//! The Oahu preset for the region-generic terrain synthesizer.
//!
//! The real analysis in the paper used USGS terrain plus an ADCIRC
//! coastal mesh. Neither is redistributable, so this module builds a
//! *synthetic but geographically faithful* Oahu: the island outline,
//! Pearl Harbor inlet, the Wai'anae and Ko'olau ranges, a low southern
//! coastal plain (Honolulu/Ewa), a steep west coast, and region-specific
//! offshore shelf profiles. What matters downstream is that the named
//! SCADA sites sit at realistic elevations and surge exposures; tests in
//! `ct-scada` pin those properties.
//!
//! The actual synthesis lives in [`crate::region`]; this module encodes
//! Oahu as a [`RegionTerrainSpec`] preset. The preset is bit-identical
//! to the original hard-wired generator (a DEM-digest pin in `core`
//! asserts this).

use crate::coords::{EnuKm, LatLon, Projection};
use crate::dem::Dem;
use crate::polygon::Polygon;
use crate::region::{synthesize_region, CoastSector, RegionTerrainSpec, RidgeSpec, SectorRule};
use serde::{Deserialize, Serialize};

/// Projection origin used for all Oahu work: roughly the island centre.
pub const OAHU_ORIGIN: LatLon = LatLon {
    lat: 21.45,
    lon: -158.0,
};

/// Coastal exposure regions of the island, classified by which stretch
/// of coastline a point drains to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoastRegion {
    /// Wai'anae (leeward) coast: steep terrain, narrow shelf.
    West,
    /// Honolulu / Ewa plain: low-lying, broad shallow shelf.
    South,
    /// North shore: moderate slopes.
    North,
    /// Windward (Ko'olau) coast.
    East,
}

impl CoastRegion {
    /// Onshore terrain slope for the region, metres per km inland.
    pub fn terrain_slope_m_per_km(self) -> f64 {
        match self {
            CoastRegion::West => 9.0,
            CoastRegion::South => 1.1,
            CoastRegion::North => 4.0,
            CoastRegion::East => 5.0,
        }
    }

    /// Offshore sea-floor slope, metres of depth per km offshore.
    pub fn shelf_slope_m_per_km(self) -> f64 {
        match self {
            CoastRegion::West => 60.0,
            CoastRegion::South => 10.0,
            CoastRegion::North => 30.0,
            CoastRegion::East => 40.0,
        }
    }
}

/// Configuration for [`synthesize_oahu`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OahuTerrainConfig {
    /// Noise seed; terrain is fully determined by the config.
    pub seed: u64,
    /// Raster cell size in km.
    pub cell_km: f64,
    /// Small-scale elevation noise amplitude in metres (near coast).
    pub noise_amp_m: f64,
}

impl Default for OahuTerrainConfig {
    fn default() -> Self {
        Self {
            seed: 0x0A44_5EED,
            cell_km: 0.5,
            noise_amp_m: 0.8,
        }
    }
}

/// The island outline vertices, in order.
fn oahu_outline_points() -> Vec<LatLon> {
    let pts = [
        (21.575, -158.281), // Ka'ena Point (west tip)
        (21.640, -158.120), // Waialua Bay
        (21.710, -157.980), // Kahuku Point (north tip)
        (21.610, -157.850), // La'ie
        (21.510, -157.830), // Ka'a'awa
        (21.420, -157.740), // Kane'ohe Bay
        (21.310, -157.650), // Makapu'u (east tip)
        (21.250, -157.710), // Sandy Beach
        (21.255, -157.810), // Diamond Head
        (21.285, -157.860), // Honolulu waterfront
        (21.300, -157.940), // Ke'ehi / airport
        (21.308, -157.972), // Pearl Harbor entrance (east)
        (21.315, -158.010), // 'Ewa Beach
        (21.300, -158.100), // Barbers Point
        (21.350, -158.130), // Kahe Point
        (21.450, -158.190), // Wai'anae
    ];
    pts.iter()
        .map(|&(lat, lon)| LatLon::new(lat, lon))
        .collect()
}

/// Pearl Harbor water body vertices, cut out of the island.
fn pearl_harbor_points() -> Vec<LatLon> {
    let pts = [
        (21.308, -157.974), // entrance, east side
        (21.302, -157.992), // entrance, west side
        (21.330, -158.008),
        (21.365, -158.018), // West Loch
        (21.392, -157.998), // Middle Loch
        (21.400, -157.978), // East Loch, north end
        (21.384, -157.960), // East Loch, east shore
        (21.345, -157.955),
        (21.322, -157.962),
    ];
    pts.iter()
        .map(|&(lat, lon)| LatLon::new(lat, lon))
        .collect()
}

/// The island outline as a polygon in the local frame.
pub fn oahu_outline(projection: &Projection) -> Polygon {
    let verts = oahu_outline_points()
        .iter()
        .map(|&p| projection.to_enu(p))
        .collect();
    Polygon::new(verts).expect("outline has >= 3 vertices")
}

/// Pearl Harbor water body, cut out of the island as an inland sea.
pub fn pearl_harbor(projection: &Projection) -> Polygon {
    let verts = pearl_harbor_points()
        .iter()
        .map(|&p| projection.to_enu(p))
        .collect();
    Polygon::new(verts).expect("harbor has >= 3 vertices")
}

/// Classifies a point by the coastal region its nearest shoreline
/// belongs to.
pub fn coast_region(outline: &Polygon, p: EnuKm) -> CoastRegion {
    let q = outline.closest_boundary_point(p);
    if q.east <= -12.5 && q.north <= 18.0 {
        CoastRegion::West
    } else if q.north <= -9.0 {
        CoastRegion::South
    } else if q.north >= 20.0 {
        CoastRegion::North
    } else {
        CoastRegion::East
    }
}

/// The Oahu case study expressed as a region spec.
///
/// The sector table and rules mirror [`coast_region`] exactly (West,
/// South, North, East in that order), so the spec-driven generator
/// reproduces the original elevation field bit for bit.
pub fn oahu_region_spec(config: &OahuTerrainConfig) -> RegionTerrainSpec {
    let sector = |r: CoastRegion| CoastSector {
        terrain_slope_m_per_km: r.terrain_slope_m_per_km(),
        shelf_slope_m_per_km: r.shelf_slope_m_per_km(),
    };
    RegionTerrainSpec {
        name: "oahu".to_string(),
        origin: OAHU_ORIGIN,
        outline: oahu_outline_points(),
        inland_waters: vec![pearl_harbor_points()],
        ridges: vec![
            // Wai'anae range along the west side.
            RidgeSpec {
                a: LatLon::new(21.42, -158.16),
                b: LatLon::new(21.55, -158.20),
                height_m: 900.0,
                width_km: 3.5,
            },
            // Ko'olau range along the east side.
            RidgeSpec {
                a: LatLon::new(21.30, -157.72),
                b: LatLon::new(21.62, -157.95),
                height_m: 750.0,
                width_km: 3.5,
            },
        ],
        sectors: vec![
            sector(CoastRegion::West),
            sector(CoastRegion::South),
            sector(CoastRegion::North),
            sector(CoastRegion::East),
        ],
        sector_rules: vec![
            SectorRule {
                max_east: Some(-12.5),
                max_north: Some(18.0),
                min_north: None,
                sector: 0,
            },
            SectorRule {
                max_east: None,
                max_north: Some(-9.0),
                min_north: None,
                sector: 1,
            },
            SectorRule {
                max_east: None,
                max_north: None,
                min_north: Some(20.0),
                sector: 2,
            },
        ],
        fallback_sector: 3,
        domain_origin: EnuKm::new(-46.0, -40.0),
        extent_km: (92.0, 78.0),
        seed: config.seed,
        cell_km: config.cell_km,
        noise_amp_m: config.noise_amp_m,
    }
}

/// Synthesizes the Oahu DEM.
///
/// The raster covers the island plus ~15 km of surrounding ocean so the
/// shallow-water surge solver has room for offshore dynamics.
pub fn synthesize_oahu(config: &OahuTerrainConfig) -> Dem {
    synthesize_region(&oahu_region_spec(config)).expect("the Oahu preset is a valid region spec")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dem() -> Dem {
        synthesize_oahu(&OahuTerrainConfig::default())
    }

    #[test]
    fn island_has_sensible_land_fraction() {
        let d = dem();
        let f = d.land_fraction();
        // Oahu is ~1545 km² inside a 92x78 km domain ≈ 0.21.
        assert!((0.12..0.35).contains(&f), "land fraction {f}");
    }

    #[test]
    fn named_sites_on_land_ocean_is_sea() {
        let d = dem();
        assert!(d.is_land(LatLon::new(21.307, -157.858)), "Honolulu");
        assert!(d.is_land(LatLon::new(21.354, -158.120)), "Kahe area");
        assert!(d.is_land(LatLon::new(21.497, -158.030)), "Central plateau");
        assert!(!d.is_land(LatLon::new(21.10, -158.0)), "open ocean south");
        assert!(
            !d.is_land(LatLon::new(21.36, -157.99)),
            "Pearl Harbor water"
        );
    }

    #[test]
    fn south_shore_is_low_west_coast_is_steep() {
        let d = dem();
        let honolulu = d.elevation_at(LatLon::new(21.307, -157.858)).unwrap();
        assert!(
            (0.5..8.0).contains(&honolulu),
            "Honolulu plain elevation {honolulu}"
        );
        let kahe = d.elevation_at(LatLon::new(21.356, -158.122)).unwrap();
        assert!(kahe > 4.0, "Kahe bluffs elevation {kahe}");
    }

    #[test]
    fn mountains_exist() {
        let d = dem();
        // Ko'olau crest area.
        let koolau = d.elevation_at(LatLon::new(21.45, -157.84)).unwrap();
        assert!(koolau > 300.0, "Ko'olau crest {koolau}");
        // Wai'anae crest area.
        let waianae = d.elevation_at(LatLon::new(21.46, -158.17)).unwrap();
        assert!(waianae > 250.0, "Wai'anae crest {waianae}");
    }

    #[test]
    fn shelf_profiles_differ_by_region() {
        let d = dem();
        let proj = *d.projection();
        // South shore: shallow shelf.
        let south_shore = proj.to_enu(LatLon::new(21.29, -157.88));
        let south = d.mean_offshore_depth(south_shore, 180.0, 4.0).unwrap();
        // West coast: deep quickly.
        let west_shore = proj.to_enu(LatLon::new(21.40, -158.17));
        let west = d.mean_offshore_depth(west_shore, 270.0, 4.0).unwrap();
        assert!(
            west > 2.0 * south,
            "west shelf {west} m should be much deeper than south {south} m"
        );
    }

    #[test]
    fn terrain_is_deterministic() {
        let a = synthesize_oahu(&OahuTerrainConfig::default());
        let b = synthesize_oahu(&OahuTerrainConfig::default());
        assert_eq!(a.elevation_grid().as_slice(), b.elevation_grid().as_slice());
    }

    #[test]
    fn seed_perturbs_noise_only() {
        let cfg = OahuTerrainConfig {
            seed: 999,
            ..OahuTerrainConfig::default()
        };
        let a = synthesize_oahu(&cfg);
        let b = synthesize_oahu(&OahuTerrainConfig::default());
        // Different noise...
        assert_ne!(a.elevation_grid().as_slice(), b.elevation_grid().as_slice());
        // ...but the same macro-structure (land fraction within 2 %).
        assert!((a.land_fraction() - b.land_fraction()).abs() < 0.02);
    }

    #[test]
    fn coast_region_classification() {
        let proj = Projection::new(OAHU_ORIGIN);
        let outline = oahu_outline(&proj);
        let kahe = proj.to_enu(LatLon::new(21.354, -158.125));
        assert_eq!(coast_region(&outline, kahe), CoastRegion::West);
        let honolulu = proj.to_enu(LatLon::new(21.30, -157.86));
        assert_eq!(coast_region(&outline, honolulu), CoastRegion::South);
        let north = proj.to_enu(LatLon::new(21.68, -158.0));
        assert_eq!(coast_region(&outline, north), CoastRegion::North);
        let windward = proj.to_enu(LatLon::new(21.45, -157.80));
        assert_eq!(coast_region(&outline, windward), CoastRegion::East);
    }

    #[test]
    fn pearl_harbor_is_inland_water() {
        let d = dem();
        let e = d.elevation_at(LatLon::new(21.36, -157.99)).unwrap();
        assert!(e < 0.0, "harbor should be water, got {e}");
        assert!(e > -30.0, "harbor should be shallow, got {e}");
    }

    #[test]
    fn spec_sector_rules_match_coast_region() {
        let spec = oahu_region_spec(&OahuTerrainConfig::default());
        let proj = Projection::new(OAHU_ORIGIN);
        let outline = oahu_outline(&proj);
        for &(lat, lon) in &[
            (21.354, -158.125),
            (21.30, -157.86),
            (21.68, -158.0),
            (21.45, -157.80),
            (21.10, -158.0),
            (21.50, -158.30),
        ] {
            let p = proj.to_enu(LatLon::new(lat, lon));
            let expected = coast_region(&outline, p);
            let got = spec.sector_of(&outline, p);
            assert_eq!(
                got.terrain_slope_m_per_km,
                expected.terrain_slope_m_per_km(),
                "sector mismatch at ({lat}, {lon})"
            );
        }
    }
}
