//! Procedural synthesis of an Oahu-like island DEM.
//!
//! The real analysis in the paper used USGS terrain plus an ADCIRC
//! coastal mesh. Neither is redistributable, so this module builds a
//! *synthetic but geographically faithful* Oahu: the island outline,
//! Pearl Harbor inlet, the Wai'anae and Ko'olau ranges, a low southern
//! coastal plain (Honolulu/Ewa), a steep west coast, and region-specific
//! offshore shelf profiles. What matters downstream is that the named
//! SCADA sites sit at realistic elevations and surge exposures; tests in
//! `ct-scada` pin those properties.

use crate::coords::{EnuKm, LatLon, Projection};
use crate::dem::Dem;
use crate::grid::Grid;
use crate::noise::fbm;
use crate::polygon::Polygon;
use serde::{Deserialize, Serialize};

/// Projection origin used for all Oahu work: roughly the island centre.
pub const OAHU_ORIGIN: LatLon = LatLon {
    lat: 21.45,
    lon: -158.0,
};

/// Coastal exposure regions of the island, classified by which stretch
/// of coastline a point drains to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoastRegion {
    /// Wai'anae (leeward) coast: steep terrain, narrow shelf.
    West,
    /// Honolulu / Ewa plain: low-lying, broad shallow shelf.
    South,
    /// North shore: moderate slopes.
    North,
    /// Windward (Ko'olau) coast.
    East,
}

impl CoastRegion {
    /// Onshore terrain slope for the region, metres per km inland.
    pub fn terrain_slope_m_per_km(self) -> f64 {
        match self {
            CoastRegion::West => 9.0,
            CoastRegion::South => 1.1,
            CoastRegion::North => 4.0,
            CoastRegion::East => 5.0,
        }
    }

    /// Offshore sea-floor slope, metres of depth per km offshore.
    pub fn shelf_slope_m_per_km(self) -> f64 {
        match self {
            CoastRegion::West => 60.0,
            CoastRegion::South => 10.0,
            CoastRegion::North => 30.0,
            CoastRegion::East => 40.0,
        }
    }
}

/// Configuration for [`synthesize_oahu`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OahuTerrainConfig {
    /// Noise seed; terrain is fully determined by the config.
    pub seed: u64,
    /// Raster cell size in km.
    pub cell_km: f64,
    /// Small-scale elevation noise amplitude in metres (near coast).
    pub noise_amp_m: f64,
}

impl Default for OahuTerrainConfig {
    fn default() -> Self {
        Self {
            seed: 0x0A44_5EED,
            cell_km: 0.5,
            noise_amp_m: 0.8,
        }
    }
}

/// The island outline as a polygon in the local frame.
pub fn oahu_outline(projection: &Projection) -> Polygon {
    let pts = [
        (21.575, -158.281), // Ka'ena Point (west tip)
        (21.640, -158.120), // Waialua Bay
        (21.710, -157.980), // Kahuku Point (north tip)
        (21.610, -157.850), // La'ie
        (21.510, -157.830), // Ka'a'awa
        (21.420, -157.740), // Kane'ohe Bay
        (21.310, -157.650), // Makapu'u (east tip)
        (21.250, -157.710), // Sandy Beach
        (21.255, -157.810), // Diamond Head
        (21.285, -157.860), // Honolulu waterfront
        (21.300, -157.940), // Ke'ehi / airport
        (21.308, -157.972), // Pearl Harbor entrance (east)
        (21.315, -158.010), // 'Ewa Beach
        (21.300, -158.100), // Barbers Point
        (21.350, -158.130), // Kahe Point
        (21.450, -158.190), // Wai'anae
    ];
    let verts = pts
        .iter()
        .map(|&(lat, lon)| projection.to_enu(LatLon::new(lat, lon)))
        .collect();
    Polygon::new(verts).expect("outline has >= 3 vertices")
}

/// Pearl Harbor water body, cut out of the island as an inland sea.
pub fn pearl_harbor(projection: &Projection) -> Polygon {
    let pts = [
        (21.308, -157.974), // entrance, east side
        (21.302, -157.992), // entrance, west side
        (21.330, -158.008),
        (21.365, -158.018), // West Loch
        (21.392, -157.998), // Middle Loch
        (21.400, -157.978), // East Loch, north end
        (21.384, -157.960), // East Loch, east shore
        (21.345, -157.955),
        (21.322, -157.962),
    ];
    let verts = pts
        .iter()
        .map(|&(lat, lon)| projection.to_enu(LatLon::new(lat, lon)))
        .collect();
    Polygon::new(verts).expect("harbor has >= 3 vertices")
}

/// Classifies a point by the coastal region its nearest shoreline
/// belongs to.
pub fn coast_region(outline: &Polygon, p: EnuKm) -> CoastRegion {
    let q = outline.closest_boundary_point(p);
    if q.east <= -12.5 && q.north <= 18.0 {
        CoastRegion::West
    } else if q.north <= -9.0 {
        CoastRegion::South
    } else if q.north >= 20.0 {
        CoastRegion::North
    } else {
        CoastRegion::East
    }
}

/// Distance (km) from `p` to the segment `ab`, all in local km.
fn segment_distance(p: EnuKm, a: EnuKm, b: EnuKm) -> f64 {
    let abe = b.east - a.east;
    let abn = b.north - a.north;
    let len2 = abe * abe + abn * abn;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((p.east - a.east) * abe + (p.north - a.north) * abn) / len2).clamp(0.0, 1.0)
    };
    p.distance_km(EnuKm::new(a.east + t * abe, a.north + t * abn))
}

/// A mountain ridge modelled as a Gaussian profile around a segment.
struct Ridge {
    a: EnuKm,
    b: EnuKm,
    height_m: f64,
    width_km: f64,
}

impl Ridge {
    fn contribution(&self, p: EnuKm) -> f64 {
        let d = segment_distance(p, self.a, self.b);
        self.height_m * (-(d / self.width_km).powi(2)).exp()
    }
}

fn ridges(projection: &Projection) -> Vec<Ridge> {
    let e = |lat: f64, lon: f64| projection.to_enu(LatLon::new(lat, lon));
    vec![
        // Wai'anae range along the west side.
        Ridge {
            a: e(21.42, -158.16),
            b: e(21.55, -158.20),
            height_m: 900.0,
            width_km: 3.5,
        },
        // Ko'olau range along the east side.
        Ridge {
            a: e(21.30, -157.72),
            b: e(21.62, -157.95),
            height_m: 750.0,
            width_km: 3.5,
        },
    ]
}

/// Synthesizes the Oahu DEM.
///
/// The raster covers the island plus ~15 km of surrounding ocean so the
/// shallow-water surge solver has room for offshore dynamics.
pub fn synthesize_oahu(config: &OahuTerrainConfig) -> Dem {
    let projection = Projection::new(OAHU_ORIGIN);
    let outline = oahu_outline(&projection);
    let harbor = pearl_harbor(&projection);
    let ridge_list = ridges(&projection);

    let origin = EnuKm::new(-46.0, -40.0);
    let (extent_e, extent_n) = (92.0, 78.0);
    let cols = (extent_e / config.cell_km).round() as usize;
    let rows = (extent_n / config.cell_km).round() as usize;

    let grid = Grid::from_fn(cols, rows, origin, config.cell_km, |p| {
        elevation_at(config, &outline, &harbor, &ridge_list, p)
    })
    .expect("non-empty grid");
    Dem::new(grid, projection)
}

fn elevation_at(
    config: &OahuTerrainConfig,
    outline: &Polygon,
    harbor: &Polygon,
    ridge_list: &[Ridge],
    p: EnuKm,
) -> f64 {
    let sdf_out = outline.signed_distance_km(p);
    let sdf_ph = harbor.signed_distance_km(p);
    // Land = inside the outline and outside the harbor.
    let land_sdf = sdf_out.max(-sdf_ph);
    if land_sdf < 0.0 {
        let dist_inland = -land_sdf;
        let region = coast_region(outline, p);
        let base = 0.5 + region.terrain_slope_m_per_km() * dist_inland;
        let ridge: f64 = ridge_list
            .iter()
            .map(|r| r.contribution(p) * (dist_inland / 3.0).min(1.0))
            .sum();
        let amp = config.noise_amp_m + 0.10 * base;
        let n = amp * fbm(config.seed, p, 0.15, 4);
        (base + ridge + n).max(0.2)
    } else if sdf_ph < 0.0 {
        // Inside Pearl Harbor: shallow, dredged-channel depths.
        -(4.0 + 6.0 * (-sdf_ph).min(1.5))
    } else {
        // Open sea: shelf deepening away from the island.
        let region = coast_region(outline, p);
        let depth = 2.0 + region.shelf_slope_m_per_km() * sdf_out;
        -depth.min(4500.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dem() -> Dem {
        synthesize_oahu(&OahuTerrainConfig::default())
    }

    #[test]
    fn island_has_sensible_land_fraction() {
        let d = dem();
        let f = d.land_fraction();
        // Oahu is ~1545 km² inside a 92x78 km domain ≈ 0.21.
        assert!((0.12..0.35).contains(&f), "land fraction {f}");
    }

    #[test]
    fn named_sites_on_land_ocean_is_sea() {
        let d = dem();
        assert!(d.is_land(LatLon::new(21.307, -157.858)), "Honolulu");
        assert!(d.is_land(LatLon::new(21.354, -158.120)), "Kahe area");
        assert!(d.is_land(LatLon::new(21.497, -158.030)), "Central plateau");
        assert!(!d.is_land(LatLon::new(21.10, -158.0)), "open ocean south");
        assert!(
            !d.is_land(LatLon::new(21.36, -157.99)),
            "Pearl Harbor water"
        );
    }

    #[test]
    fn south_shore_is_low_west_coast_is_steep() {
        let d = dem();
        let honolulu = d.elevation_at(LatLon::new(21.307, -157.858)).unwrap();
        assert!(
            (0.5..8.0).contains(&honolulu),
            "Honolulu plain elevation {honolulu}"
        );
        let kahe = d.elevation_at(LatLon::new(21.356, -158.122)).unwrap();
        assert!(kahe > 4.0, "Kahe bluffs elevation {kahe}");
    }

    #[test]
    fn mountains_exist() {
        let d = dem();
        // Ko'olau crest area.
        let koolau = d.elevation_at(LatLon::new(21.45, -157.84)).unwrap();
        assert!(koolau > 300.0, "Ko'olau crest {koolau}");
        // Wai'anae crest area.
        let waianae = d.elevation_at(LatLon::new(21.46, -158.17)).unwrap();
        assert!(waianae > 250.0, "Wai'anae crest {waianae}");
    }

    #[test]
    fn shelf_profiles_differ_by_region() {
        let d = dem();
        let proj = *d.projection();
        // South shore: shallow shelf.
        let south_shore = proj.to_enu(LatLon::new(21.29, -157.88));
        let south = d.mean_offshore_depth(south_shore, 180.0, 4.0).unwrap();
        // West coast: deep quickly.
        let west_shore = proj.to_enu(LatLon::new(21.40, -158.17));
        let west = d.mean_offshore_depth(west_shore, 270.0, 4.0).unwrap();
        assert!(
            west > 2.0 * south,
            "west shelf {west} m should be much deeper than south {south} m"
        );
    }

    #[test]
    fn terrain_is_deterministic() {
        let a = synthesize_oahu(&OahuTerrainConfig::default());
        let b = synthesize_oahu(&OahuTerrainConfig::default());
        assert_eq!(a.elevation_grid().as_slice(), b.elevation_grid().as_slice());
    }

    #[test]
    fn seed_perturbs_noise_only() {
        let cfg = OahuTerrainConfig {
            seed: 999,
            ..OahuTerrainConfig::default()
        };
        let a = synthesize_oahu(&cfg);
        let b = synthesize_oahu(&OahuTerrainConfig::default());
        // Different noise...
        assert_ne!(a.elevation_grid().as_slice(), b.elevation_grid().as_slice());
        // ...but the same macro-structure (land fraction within 2 %).
        assert!((a.land_fraction() - b.land_fraction()).abs() < 0.02);
    }

    #[test]
    fn coast_region_classification() {
        let proj = Projection::new(OAHU_ORIGIN);
        let outline = oahu_outline(&proj);
        let kahe = proj.to_enu(LatLon::new(21.354, -158.125));
        assert_eq!(coast_region(&outline, kahe), CoastRegion::West);
        let honolulu = proj.to_enu(LatLon::new(21.30, -157.86));
        assert_eq!(coast_region(&outline, honolulu), CoastRegion::South);
        let north = proj.to_enu(LatLon::new(21.68, -158.0));
        assert_eq!(coast_region(&outline, north), CoastRegion::North);
        let windward = proj.to_enu(LatLon::new(21.45, -157.80));
        assert_eq!(coast_region(&outline, windward), CoastRegion::East);
    }

    #[test]
    fn pearl_harbor_is_inland_water() {
        let d = dem();
        let e = d.elevation_at(LatLon::new(21.36, -157.99)).unwrap();
        assert!(e < 0.0, "harbor should be water, got {e}");
        assert!(e > -30.0, "harbor should be shallow, got {e}");
    }
}
