//! Generic raster grid over a local east/north domain.

use crate::coords::EnuKm;
use crate::error::GeoError;
use serde::{Deserialize, Serialize};

/// A dense row-major raster over a rectangular east/north domain.
///
/// Cell `(0, 0)` is the south-west corner. Cell centres are at
/// `origin + (i + 0.5) * cell_km` in each axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid<T> {
    cols: usize,
    rows: usize,
    /// South-west corner of the domain, in local km.
    origin: EnuKm,
    /// Cell edge length in km (square cells).
    cell_km: f64,
    data: Vec<T>,
}

impl<T: Clone> Grid<T> {
    /// Creates a grid filled with `fill`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyGrid`] if `cols` or `rows` is zero, or
    /// `cell_km` is not strictly positive.
    pub fn filled(
        cols: usize,
        rows: usize,
        origin: EnuKm,
        cell_km: f64,
        fill: T,
    ) -> Result<Self, GeoError> {
        if cols == 0 || rows == 0 || cell_km.is_nan() || cell_km <= 0.0 {
            return Err(GeoError::EmptyGrid);
        }
        Ok(Self {
            cols,
            rows,
            origin,
            cell_km,
            data: vec![fill; cols * rows],
        })
    }

    /// Creates a grid by evaluating `f` at every cell centre.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyGrid`] for a zero-sized grid or
    /// non-positive cell size.
    pub fn from_fn(
        cols: usize,
        rows: usize,
        origin: EnuKm,
        cell_km: f64,
        mut f: impl FnMut(EnuKm) -> T,
    ) -> Result<Self, GeoError> {
        if cols == 0 || rows == 0 || cell_km.is_nan() || cell_km <= 0.0 {
            return Err(GeoError::EmptyGrid);
        }
        let mut data = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                let p = EnuKm::new(
                    origin.east + (c as f64 + 0.5) * cell_km,
                    origin.north + (r as f64 + 0.5) * cell_km,
                );
                data.push(f(p));
            }
        }
        Ok(Self {
            cols,
            rows,
            origin,
            cell_km,
            data,
        })
    }
}

impl<T> Grid<T> {
    /// Number of columns (east axis).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows (north axis).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// South-west corner of the domain in local km.
    pub fn origin(&self) -> EnuKm {
        self.origin
    }

    /// Cell edge length in km.
    pub fn cell_km(&self) -> f64 {
        self.cell_km
    }

    /// Total extent of the domain `(east_km, north_km)`.
    pub fn extent_km(&self) -> (f64, f64) {
        (
            self.cols as f64 * self.cell_km,
            self.rows as f64 * self.cell_km,
        )
    }

    /// Returns the value at `(col, row)`, or `None` when out of range.
    pub fn get(&self, col: usize, row: usize) -> Option<&T> {
        if col < self.cols && row < self.rows {
            self.data.get(row * self.cols + col)
        } else {
            None
        }
    }

    /// Mutable access to the value at `(col, row)`.
    pub fn get_mut(&mut self, col: usize, row: usize) -> Option<&mut T> {
        if col < self.cols && row < self.rows {
            self.data.get_mut(row * self.cols + col)
        } else {
            None
        }
    }

    /// Centre coordinate of cell `(col, row)` in local km.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn cell_center(&self, col: usize, row: usize) -> EnuKm {
        assert!(col < self.cols && row < self.rows, "cell out of range");
        EnuKm::new(
            self.origin.east + (col as f64 + 0.5) * self.cell_km,
            self.origin.north + (row as f64 + 0.5) * self.cell_km,
        )
    }

    /// Maps a point to the containing cell `(col, row)`, or `None` when
    /// outside the domain.
    pub fn cell_of(&self, p: EnuKm) -> Option<(usize, usize)> {
        let c = (p.east - self.origin.east) / self.cell_km;
        let r = (p.north - self.origin.north) / self.cell_km;
        if c < 0.0 || r < 0.0 {
            return None;
        }
        let (c, r) = (c as usize, r as usize);
        if c < self.cols && r < self.rows {
            Some((c, r))
        } else {
            None
        }
    }

    /// Iterates over `(col, row, &value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (i % cols, i / cols, v))
    }

    /// Raw row-major data slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Raw mutable row-major data slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Produces a new grid of the same shape by mapping every value.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Grid<U> {
        Grid {
            cols: self.cols,
            rows: self.rows,
            origin: self.origin,
            cell_km: self.cell_km,
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl Grid<f64> {
    /// Bilinearly interpolated value at a point, or `None` outside the
    /// domain. Edge cells clamp to their centre values.
    pub fn sample(&self, p: EnuKm) -> Option<f64> {
        let fx = (p.east - self.origin.east) / self.cell_km - 0.5;
        let fy = (p.north - self.origin.north) / self.cell_km - 0.5;
        if fx < -0.5 || fy < -0.5 {
            return None;
        }
        if fx > self.cols as f64 - 0.5 || fy > self.rows as f64 - 0.5 {
            return None;
        }
        let x0 = fx.floor().clamp(0.0, (self.cols - 1) as f64) as usize;
        let y0 = fy.floor().clamp(0.0, (self.rows - 1) as f64) as usize;
        let x1 = (x0 + 1).min(self.cols - 1);
        let y1 = (y0 + 1).min(self.rows - 1);
        let tx = (fx - x0 as f64).clamp(0.0, 1.0);
        let ty = (fy - y0 as f64).clamp(0.0, 1.0);
        let v00 = self.data[y0 * self.cols + x0];
        let v10 = self.data[y0 * self.cols + x1];
        let v01 = self.data[y1 * self.cols + x0];
        let v11 = self.data[y1 * self.cols + x1];
        let a = v00 * (1.0 - tx) + v10 * tx;
        let b = v01 * (1.0 - tx) + v11 * tx;
        Some(a * (1.0 - ty) + b * ty)
    }

    /// Minimum and maximum values over the grid.
    ///
    /// # Panics
    ///
    /// Never panics: grids are guaranteed non-empty at construction.
    pub fn min_max(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in &self.data {
            min = min.min(v);
            max = max.max(v);
        }
        (min, max)
    }

    /// Sum of all cell values.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid() -> Grid<f64> {
        Grid::from_fn(10, 8, EnuKm::new(-5.0, -4.0), 1.0, |p| {
            p.east + 2.0 * p.north
        })
        .unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Grid::filled(0, 4, EnuKm::default(), 1.0, 0.0),
            Err(GeoError::EmptyGrid)
        );
        assert_eq!(
            Grid::filled(4, 4, EnuKm::default(), 0.0, 0.0),
            Err(GeoError::EmptyGrid)
        );
    }

    #[test]
    fn get_and_cell_of_agree() {
        let g = unit_grid();
        let p = EnuKm::new(1.3, 2.7);
        let (c, r) = g.cell_of(p).unwrap();
        assert_eq!((c, r), (6, 6));
        let center = g.cell_center(c, r);
        assert!((center.east - 1.5).abs() < 1e-12);
        assert!((center.north - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cell_of_out_of_domain() {
        let g = unit_grid();
        assert_eq!(g.cell_of(EnuKm::new(-5.01, 0.0)), None);
        assert_eq!(g.cell_of(EnuKm::new(5.01, 0.0)), None);
        assert_eq!(g.cell_of(EnuKm::new(0.0, 4.01)), None);
    }

    #[test]
    fn bilinear_reconstructs_linear_field() {
        // A bilinear interpolant reproduces affine functions exactly.
        let g = unit_grid();
        for &(e, n) in &[(0.0, 0.0), (1.2, -1.7), (-3.3, 2.9), (4.0, 3.0)] {
            let v = g.sample(EnuKm::new(e, n)).unwrap();
            assert!((v - (e + 2.0 * n)).abs() < 1e-9, "at ({e},{n}) got {v}");
        }
    }

    #[test]
    fn sample_outside_is_none() {
        let g = unit_grid();
        assert!(g.sample(EnuKm::new(-20.0, 0.0)).is_none());
        assert!(g.sample(EnuKm::new(0.0, 40.0)).is_none());
    }

    #[test]
    fn map_preserves_geometry() {
        let g = unit_grid();
        let h = g.map(|v| v * 2.0);
        assert_eq!(h.cols(), g.cols());
        assert_eq!(h.cell_km(), g.cell_km());
        assert!((h.sample(EnuKm::new(1.0, 1.0)).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_and_sum() {
        let g = Grid::filled(2, 2, EnuKm::default(), 1.0, 3.0).unwrap();
        assert_eq!(g.min_max(), (3.0, 3.0));
        assert_eq!(g.sum(), 12.0);
    }

    #[test]
    fn iter_covers_all_cells() {
        let g = unit_grid();
        assert_eq!(g.iter().count(), 80);
        let (c, r, _) = g.iter().last().unwrap();
        assert_eq!((c, r), (9, 7));
    }
}
