//! The packed segment layout: append-only logs of framed records.
//!
//! Instead of one file (and two fsyncs) per artifact, a packed store
//! appends every record to the current segment file
//! `<root>/segments/seg-<nnnn>.ctseg` and serves reads from an
//! in-memory key → `(segment, offset, len)` index via positioned
//! `pread`s. Durability is batched: one `fdatasync` per
//! `sync_bytes` of appended data (and one at segment seal / store
//! drop), so put throughput is bounded by sequential write bandwidth,
//! not by per-file fsync latency.
//!
//! On-disk entry layout (little-endian), one per record:
//!
//! ```text
//! offset  size  field
//! 0       16    key (digest bytes)
//! 16      1     kind: 0 = put, 1 = tombstone
//! 17      8     write timestamp, unix seconds, u64 LE
//! 25      ..    CTSTORE1 frame (self-describing length, checksummed)
//! ```
//!
//! A tombstone carries an empty-payload frame so every entry parses
//! the same way. Replaying entries in (segment id, offset) order
//! rebuilds the index: a later put wins, a tombstone deletes.
//!
//! When the active segment reaches `roll_bytes` it is **sealed**: a
//! footer listing every entry (key, kind, ts, offset, len) is
//! appended, followed by a 32-byte trailer
//! `count u64 | entries_bytes u64 | checksum64(entries) u64 | magic
//! b"CTSEGIDX"` read backwards from the end of the file. Reopening a
//! store loads sealed segments from their footers — O(segments), not
//! O(records) — and frame-scans only the unsealed tail segment. A
//! missing or damaged footer degrades to the frame scan, never to
//! data loss.
//!
//! Crash safety differs from the loose layout by construction: there
//! is no rename, so a torn append leaves garbage *past the logical
//! end* of the segment, which the open-time scan truncates away and
//! the next append overwrites. A bit flip inside a committed entry is
//! caught by the frame checksum on read and evicted by appending a
//! tombstone — the same validate-or-evict contract as the loose
//! layout. `Store::fsck` walks every segment entry, and in repair
//! mode rewrites segments that hold corrupt frames (or whose live
//! ratio fell below [`COMPACT_LIVE_RATIO`]) through a staged
//! tmp-then-rename compaction.

use crate::format::{self, decode_record};
use crate::hash::{checksum64, Digest};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Fixed per-entry header (key + kind + timestamp) before the frame.
pub const ENTRY_HEADER_LEN: usize = 16 + 1 + 8;
/// Entry kind: a record write.
pub const KIND_PUT: u8 = 0;
/// Entry kind: a deletion masking every earlier put of the key.
pub const KIND_TOMBSTONE: u8 = 1;
/// Trailing magic of a sealed segment's footer.
pub const FOOTER_MAGIC: [u8; 8] = *b"CTSEGIDX";
/// Fixed trailer size (count, entries length, checksum, magic).
pub const TRAILER_LEN: usize = 32;
/// One serialized footer entry: key, kind, ts, offset, len.
pub const FOOTER_ENTRY_LEN: usize = 16 + 1 + 8 + 8 + 8;
/// Sealed segments below this live-byte ratio are compacted by
/// `fsck --repair`.
pub const COMPACT_LIVE_RATIO: f64 = 0.5;

/// Size thresholds of the packed layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedOptions {
    /// Seal the active segment (footer + roll) once it holds this
    /// many bytes. Default 64 MiB.
    pub roll_bytes: u64,
    /// Group-fsync the active segment after this many appended bytes.
    /// Default 8 MiB.
    pub sync_bytes: u64,
}

impl Default for PackedOptions {
    fn default() -> Self {
        Self {
            roll_bytes: 64 << 20,
            sync_bytes: 8 << 20,
        }
    }
}

impl PackedOptions {
    /// The defaults overridden by `CT_SEGMENT_ROLL_BYTES` /
    /// `CT_SEGMENT_SYNC_BYTES` (read at every store open, so CI can
    /// force frequent rolls without rebuilding).
    pub fn from_env() -> Self {
        let read = |name: &str, default: u64| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let defaults = Self::default();
        Self {
            roll_bytes: read("CT_SEGMENT_ROLL_BYTES", defaults.roll_bytes).max(1),
            sync_bytes: read("CT_SEGMENT_SYNC_BYTES", defaults.sync_bytes).max(1),
        }
    }
}

/// Where one live record sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Segment id.
    pub seg: u32,
    /// Byte offset of the entry (header included) in the segment.
    pub offset: u64,
    /// Total entry length in bytes (header + frame).
    pub len: u64,
    /// Write timestamp, unix seconds.
    pub ts: u64,
}

/// One entry as listed in a segment footer (or recovered by a scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryMeta {
    /// The record key.
    pub key: Digest,
    /// [`KIND_PUT`] or [`KIND_TOMBSTONE`].
    pub kind: u8,
    /// Write timestamp, unix seconds.
    pub ts: u64,
    /// Byte offset of the entry in the segment.
    pub offset: u64,
    /// Total entry length in bytes.
    pub len: u64,
}

/// The active (append-target) segment.
#[derive(Debug)]
pub struct ActiveSegment {
    /// Segment id.
    pub id: u32,
    /// Logical length: the clean entry boundary appends go to. The
    /// physical file may be longer after a torn append; the garbage
    /// past this point is overwritten by the next append.
    pub len: u64,
    /// Bytes appended since the last fsync.
    pub unsynced: u64,
    /// Footer entries accumulated for the eventual seal, in offset
    /// order.
    pub pending: Vec<EntryMeta>,
}

/// Mutable state of a packed store, behind the backend's mutex.
#[derive(Debug)]
pub struct PackedState {
    /// Key → location of the winning entry.
    pub index: HashMap<Digest, IndexEntry>,
    /// Open read/write handles, one per segment file.
    pub files: BTreeMap<u32, Arc<fs::File>>,
    /// The append target.
    pub active: ActiveSegment,
}

/// What rebuilding the index at open observed — reported as
/// `store.segment.*` counters by the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenStats {
    /// Sealed segments loaded from their footer.
    pub footer_loads: usize,
    /// Segments rebuilt by a full frame scan (unsealed tail, or a
    /// sealed segment whose footer was missing/damaged).
    pub scans: usize,
    /// Segments whose tail failed to parse and was truncated back to
    /// the last clean entry boundary.
    pub truncated_tails: usize,
}

/// The shared, clone-cheap handle to a packed store's state.
#[derive(Debug)]
pub struct PackedBackend {
    /// `<root>/segments`.
    pub dir: PathBuf,
    /// Size thresholds.
    pub options: PackedOptions,
    /// All mutable state.
    pub state: std::sync::Mutex<PackedState>,
}

impl Drop for PackedBackend {
    fn drop(&mut self) {
        // Final group fsync: whatever the batching left unsynced is
        // flushed when the last store handle goes away, best-effort.
        if let Ok(state) = self.state.lock() {
            if state.active.unsynced > 0 {
                if let Some(f) = state.files.get(&state.active.id) {
                    let _ = f.sync_data();
                }
            }
        }
    }
}

/// The segment file path for `id` under `dir`.
pub fn segment_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("seg-{id:04}.ctseg"))
}

/// Parses a segment id out of a `seg-<nnnn>.ctseg` file name.
pub fn parse_segment_id(name: &str) -> Option<u32> {
    name.strip_prefix("seg-")?
        .strip_suffix(".ctseg")?
        .parse()
        .ok()
}

/// Unix seconds now; clock weirdness degrades to 0, never panics.
pub fn now_unix_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Serializes one entry: header + the already-framed record bytes.
pub fn encode_entry(key: &Digest, kind: u8, ts: u64, frame: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENTRY_HEADER_LEN + frame.len());
    out.extend_from_slice(&key.0);
    out.push(kind);
    out.extend_from_slice(&ts.to_le_bytes());
    out.extend_from_slice(frame);
    out
}

/// One parsed entry, borrowed from a segment buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedEntry<'a> {
    /// The record key.
    pub key: Digest,
    /// Entry kind.
    pub kind: u8,
    /// Write timestamp.
    pub ts: u64,
    /// The CTSTORE1 frame bytes (validated structurally, not by
    /// checksum — call [`decode_record`] on it for that).
    pub frame: &'a [u8],
    /// Total entry length.
    pub len: u64,
}

/// Structurally parses the entry starting at `bytes[0]`: the header
/// plus a frame whose declared length fits the buffer. Returns `None`
/// when the bytes cannot be an entry boundary (truncated tail, stray
/// garbage, a torn footer) — the caller stops scanning there.
pub fn parse_entry(bytes: &[u8]) -> Option<ParsedEntry<'_>> {
    if bytes.len() < ENTRY_HEADER_LEN + format::HEADER_LEN {
        return None;
    }
    let key = Digest(bytes[0..16].try_into().expect("16 bytes"));
    let kind = bytes[16];
    if kind != KIND_PUT && kind != KIND_TOMBSTONE {
        return None;
    }
    let ts = u64::from_le_bytes(bytes[17..25].try_into().expect("8 bytes"));
    let frame = &bytes[ENTRY_HEADER_LEN..];
    if frame[0..8] != format::MAGIC {
        return None;
    }
    let payload_len = u64::from_le_bytes(frame[12..20].try_into().expect("8 bytes"));
    let payload_len = usize::try_from(payload_len).ok()?;
    let frame_len = format::HEADER_LEN.checked_add(payload_len)?;
    if frame.len() < frame_len {
        return None;
    }
    Some(ParsedEntry {
        key,
        kind,
        ts,
        frame: &frame[..frame_len],
        len: (ENTRY_HEADER_LEN + frame_len) as u64,
    })
}

/// Serializes the footer (entries + trailer) of a sealed segment.
pub fn encode_footer(entries: &[EntryMeta]) -> Vec<u8> {
    let mut body = Vec::with_capacity(entries.len() * FOOTER_ENTRY_LEN + TRAILER_LEN);
    for e in entries {
        body.extend_from_slice(&e.key.0);
        body.push(e.kind);
        body.extend_from_slice(&e.ts.to_le_bytes());
        body.extend_from_slice(&e.offset.to_le_bytes());
        body.extend_from_slice(&e.len.to_le_bytes());
    }
    let checksum = checksum64(&body);
    body.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    body.extend_from_slice(&((entries.len() * FOOTER_ENTRY_LEN) as u64).to_le_bytes());
    body.extend_from_slice(&checksum.to_le_bytes());
    body.extend_from_slice(&FOOTER_MAGIC);
    body
}

/// A sealed segment's footer, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footer {
    /// The entries, in offset order.
    pub entries: Vec<EntryMeta>,
    /// Where the data region ends (= where the footer begins).
    pub data_len: u64,
}

/// Decodes the footer out of a whole segment image. `None` means the
/// segment is unsealed (or its footer is damaged) and must be
/// frame-scanned instead.
pub fn decode_footer(bytes: &[u8]) -> Option<Footer> {
    if bytes.len() < TRAILER_LEN {
        return None;
    }
    let trailer = &bytes[bytes.len() - TRAILER_LEN..];
    if trailer[24..32] != FOOTER_MAGIC {
        return None;
    }
    let count = u64::from_le_bytes(trailer[0..8].try_into().expect("8 bytes"));
    let entries_bytes = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));
    let stored = u64::from_le_bytes(trailer[16..24].try_into().expect("8 bytes"));
    let count = usize::try_from(count).ok()?;
    let entries_bytes = usize::try_from(entries_bytes).ok()?;
    if entries_bytes != count * FOOTER_ENTRY_LEN || bytes.len() < TRAILER_LEN + entries_bytes {
        return None;
    }
    let body = &bytes[bytes.len() - TRAILER_LEN - entries_bytes..bytes.len() - TRAILER_LEN];
    if checksum64(body) != stored {
        return None;
    }
    let data_len = (bytes.len() - TRAILER_LEN - entries_bytes) as u64;
    let mut entries = Vec::with_capacity(count);
    for chunk in body.chunks_exact(FOOTER_ENTRY_LEN) {
        let e = EntryMeta {
            key: Digest(chunk[0..16].try_into().expect("16 bytes")),
            kind: chunk[16],
            ts: u64::from_le_bytes(chunk[17..25].try_into().expect("8 bytes")),
            offset: u64::from_le_bytes(chunk[25..33].try_into().expect("8 bytes")),
            len: u64::from_le_bytes(chunk[33..41].try_into().expect("8 bytes")),
        };
        // A footer whose entries point outside the data region is as
        // damaged as a bad checksum.
        if e.offset.checked_add(e.len)? > data_len {
            return None;
        }
        entries.push(e);
    }
    Some(Footer { entries, data_len })
}

/// What scanning one segment's data region found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// Every structurally valid entry, in offset order.
    pub entries: Vec<EntryMeta>,
    /// The clean boundary the scan reached.
    pub clean_len: u64,
    /// Whether bytes past `clean_len` failed to parse (torn tail,
    /// damaged footer, stray garbage).
    pub truncated: bool,
}

/// Frame-scans a segment's data region (`bytes[..data_len]`),
/// recovering entry boundaries without trusting any footer. Payload
/// checksums are *not* verified here — reads do that lazily, fsck
/// does it exhaustively.
pub fn scan_entries(bytes: &[u8], data_len: u64) -> ScanResult {
    let data = &bytes[..data_len.min(bytes.len() as u64) as usize];
    let mut entries = Vec::new();
    let mut off = 0usize;
    while off < data.len() {
        match parse_entry(&data[off..]) {
            Some(e) => {
                entries.push(EntryMeta {
                    key: e.key,
                    kind: e.kind,
                    ts: e.ts,
                    offset: off as u64,
                    len: e.len,
                });
                off += e.len as usize;
            }
            None => {
                return ScanResult {
                    entries,
                    clean_len: off as u64,
                    truncated: true,
                };
            }
        }
    }
    ScanResult {
        entries,
        clean_len: off as u64,
        truncated: false,
    }
}

/// Applies one replayed entry to the index (later entries win).
pub fn apply_entry(index: &mut HashMap<Digest, IndexEntry>, seg: u32, e: &EntryMeta) {
    if e.kind == KIND_TOMBSTONE {
        index.remove(&e.key);
    } else {
        index.insert(
            e.key,
            IndexEntry {
                seg,
                offset: e.offset,
                len: e.len,
                ts: e.ts,
            },
        );
    }
}

/// Validates one entry image end-to-end (header, key, frame
/// checksum) and returns the payload of a put. Used by reads and by
/// fsck; a `None` is a corrupt entry.
pub fn validate_entry<'a>(bytes: &'a [u8], expected_key: &Digest) -> Option<&'a [u8]> {
    let e = parse_entry(bytes)?;
    if e.len as usize != bytes.len() || e.key != *expected_key || e.kind != KIND_PUT {
        return None;
    }
    decode_record(e.frame).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::encode_record;
    use crate::hash::StableHasher;

    fn key(label: &str) -> Digest {
        let mut h = StableHasher::new();
        h.write_str(label);
        h.finish()
    }

    fn entry(label: &str, kind: u8, ts: u64, payload: &[u8]) -> Vec<u8> {
        encode_entry(&key(label), kind, ts, &encode_record(payload))
    }

    #[test]
    fn entry_round_trip() {
        let bytes = entry("a", KIND_PUT, 1234, b"payload");
        let e = parse_entry(&bytes).unwrap();
        assert_eq!(e.key, key("a"));
        assert_eq!(e.kind, KIND_PUT);
        assert_eq!(e.ts, 1234);
        assert_eq!(e.len as usize, bytes.len());
        assert_eq!(decode_record(e.frame).unwrap(), b"payload");
        assert_eq!(validate_entry(&bytes, &key("a")).unwrap(), b"payload");
        // Wrong key, wrong kind, flipped payload: all rejected.
        assert!(validate_entry(&bytes, &key("b")).is_none());
        let tomb = entry("a", KIND_TOMBSTONE, 1, b"");
        assert!(validate_entry(&tomb, &key("a")).is_none());
        let mut flipped = bytes.clone();
        *flipped.last_mut().unwrap() ^= 1;
        assert!(validate_entry(&flipped, &key("a")).is_none());
    }

    #[test]
    fn scan_recovers_entries_and_stops_at_garbage() {
        let mut log = Vec::new();
        let mut lens = Vec::new();
        for (i, label) in ["a", "b", "c"].iter().enumerate() {
            let e = entry(label, KIND_PUT, i as u64, &[i as u8; 10]);
            lens.push(e.len() as u64);
            log.extend_from_slice(&e);
        }
        let clean = log.len() as u64;
        let scan = scan_entries(&log, clean);
        assert_eq!(scan.entries.len(), 3);
        assert!(!scan.truncated);
        assert_eq!(scan.clean_len, clean);
        assert_eq!(scan.entries[1].offset, lens[0]);
        assert_eq!(scan.entries[2].key, key("c"));

        // A torn tail: half an entry after the last clean boundary.
        let torn = entry("d", KIND_PUT, 9, b"torn");
        log.extend_from_slice(&torn[..torn.len() / 2]);
        let scan = scan_entries(&log, log.len() as u64);
        assert_eq!(scan.entries.len(), 3);
        assert!(scan.truncated);
        assert_eq!(scan.clean_len, clean);
    }

    #[test]
    fn footer_round_trip_and_damage_detection() {
        let entries = vec![
            EntryMeta {
                key: key("a"),
                kind: KIND_PUT,
                ts: 7,
                offset: 0,
                len: 60,
            },
            EntryMeta {
                key: key("b"),
                kind: KIND_TOMBSTONE,
                ts: 8,
                offset: 60,
                len: 53,
            },
        ];
        let mut image = vec![0u8; 113]; // stand-in data region
        image.extend_from_slice(&encode_footer(&entries));
        let footer = decode_footer(&image).unwrap();
        assert_eq!(footer.entries, entries);
        assert_eq!(footer.data_len, 113);

        // Flip a footer byte: checksum must reject the whole footer.
        let mut damaged = image.clone();
        let at = damaged.len() - TRAILER_LEN - 3;
        damaged[at] ^= 0xff;
        assert!(decode_footer(&damaged).is_none());
        // Chop the trailer: unsealed.
        assert!(decode_footer(&image[..image.len() - 5]).is_none());
        // An out-of-range entry is rejected even with a valid checksum.
        let bad = vec![EntryMeta {
            key: key("x"),
            kind: KIND_PUT,
            ts: 0,
            offset: 100,
            len: 100,
        }];
        let mut short = vec![0u8; 50];
        short.extend_from_slice(&encode_footer(&bad));
        assert!(decode_footer(&short).is_none());
    }

    #[test]
    fn replay_order_later_entries_win() {
        let mut index = HashMap::new();
        let put = |off: u64, ts: u64| EntryMeta {
            key: key("k"),
            kind: KIND_PUT,
            ts,
            offset: off,
            len: 50,
        };
        apply_entry(&mut index, 0, &put(0, 1));
        apply_entry(&mut index, 0, &put(50, 2));
        assert_eq!(index[&key("k")].offset, 50);
        let tomb = EntryMeta {
            key: key("k"),
            kind: KIND_TOMBSTONE,
            ts: 3,
            offset: 100,
            len: 53,
        };
        apply_entry(&mut index, 1, &tomb);
        assert!(index.is_empty(), "tombstone must delete");
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(parse_segment_id("seg-0007.ctseg"), Some(7));
        assert_eq!(
            segment_path(Path::new("/s"), 7).file_name().unwrap(),
            "seg-0007.ctseg"
        );
        assert_eq!(parse_segment_id("seg-7.ctseg"), Some(7));
        assert_eq!(parse_segment_id("seg-x.ctseg"), None);
        assert_eq!(parse_segment_id("other.rec"), None);
    }

    #[test]
    fn env_options_have_sane_defaults() {
        let d = PackedOptions::default();
        assert_eq!(d.roll_bytes, 64 << 20);
        assert_eq!(d.sync_bytes, 8 << 20);
    }
}
