//! The remote store: a hand-rolled HTTP/1.1 wire protocol and the
//! client backend that speaks it.
//!
//! `ct serve` exposes a store over plain HTTP/1.1 so shards can run
//! on disjoint machines against one shared store. The protocol is
//! deliberately minimal — no dependencies, no keep-alive, no chunked
//! encoding — because the workload is small framed records, not web
//! traffic:
//!
//! ```text
//! GET    /objects/<hex32>            200 body = CTSTORE1 frame | 404 miss
//! PUT    /objects/<hex32>  frame →   204 stored
//! DELETE /objects/<hex32>            200 body = "1" | "0"  (evicted?)
//! DELETE /objects/<hex32>?corrupt=1  204 invalidated
//! GET    /probe?...                  200 state-probability CSV
//! GET    /healthz                    200 "ok\n"
//! GET    /metricsz                   200 ct-obs snapshot CSV
//! ```
//!
//! Object bodies are the [`crate::format`] CTSTORE1 frame — the same
//! bytes the loose layout stores on disk — so the record checksum
//! protects the payload *end to end*: a bit flipped on the wire is
//! caught by the receiver exactly like a bit rotted on disk. Every
//! request and response carries `Content-Length` and
//! `Connection: close`; one request per connection keeps the server's
//! fixed worker pool starvation-free under arbitrarily many clients
//! (the kernel accept queue is the fair scheduler).
//!
//! [`RemoteStore`] implements [`StoreBackend`] over this protocol
//! with the store's budget-aware transient retries
//! (`CT_STORE_RETRY_BUDGET_MS`, extended to connection-lifecycle
//! errors) — so a briefly-restarting
//! server costs milliseconds, and a dead one degrades callers to
//! compute-without-cache exactly like a failing disk.

use crate::backend::StoreBackend;
use crate::error::StoreError;
use crate::format::{decode_record, encode_record};
use crate::hash::Digest;
use crate::metrics::MetricsSink;
use crate::retry;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cap on request/response head bytes (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Cap on body bytes; far above any record the pipeline produces.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
/// Generous because a cold `/probe` may build a whole case study.
const IO_TIMEOUT: Duration = Duration::from_secs(60);

/// One parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// The method verbatim (`GET`, `PUT`, `DELETE`, ...).
    pub method: String,
    /// The request target verbatim (path plus optional `?query`).
    pub target: String,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The target split at the first `?`: `(path, query)`, query
    /// empty when absent.
    pub fn split_target(&self) -> (&str, &str) {
        match self.target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (self.target.as_str(), ""),
        }
    }
}

/// The value of `name` in an `a=1&b=2` query string.
pub fn query_param<'a>(query: &'a str, name: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

/// Why a request could not be parsed; maps onto the 4xx the server
/// answers with (the worker survives every variant).
#[derive(Debug)]
pub enum RequestError {
    /// Garbage, truncation, or an unparsable frame: 400.
    BadRequest(&'static str),
    /// Head grew past [`MAX_HEAD_BYTES`]: 431.
    HeadTooLarge,
    /// `Content-Length` past [`MAX_BODY_BYTES`]: 413.
    BodyTooLarge,
    /// A transport error below HTTP; nothing to answer.
    Io(std::io::Error),
}

impl RequestError {
    /// The status line this error is answered with, or `None` when
    /// the transport is already gone.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            RequestError::BadRequest(_) => Some((400, "Bad Request")),
            RequestError::HeadTooLarge => Some((431, "Request Header Fields Too Large")),
            RequestError::BodyTooLarge => Some((413, "Payload Too Large")),
            RequestError::Io(_) => None,
        }
    }
}

/// Reads until the `\r\n\r\n` head terminator, returning the head
/// (terminator excluded) and any body bytes already read past it.
/// `Ok(None)` head means the head outgrew `cap`.
#[allow(clippy::type_complexity)]
fn read_head(stream: &mut impl Read, cap: usize) -> std::io::Result<Option<(Vec<u8>, Vec<u8>)>> {
    let mut head: Vec<u8> = Vec::new();
    let mut buf = [0u8; 2048];
    loop {
        if let Some(pos) = head.windows(4).position(|w| w == b"\r\n\r\n") {
            let leftover = head.split_off(pos + 4);
            head.truncate(pos);
            return Ok(Some((head, leftover)));
        }
        if head.len() > cap {
            return Ok(None);
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before the end of the message head",
            ));
        }
        head.extend_from_slice(&buf[..n]);
    }
}

/// The `Content-Length` among raw header lines, if present and valid.
fn content_length(head: &[u8]) -> Result<Option<usize>, &'static str> {
    for line in head.split(|&b| b == b'\n') {
        let line = std::str::from_utf8(line).map_err(|_| "non-UTF-8 header line")?;
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            return value
                .trim()
                .parse::<usize>()
                .map(Some)
                .map_err(|_| "unparsable Content-Length");
        }
    }
    Ok(None)
}

/// Reads the declared body: `leftover` bytes already consumed from
/// the socket, plus exactly the remainder.
fn read_body(
    stream: &mut impl Read,
    mut leftover: Vec<u8>,
    declared: usize,
) -> Result<Vec<u8>, RequestError> {
    if leftover.len() > declared {
        // One request per connection: bytes past the declared body
        // are a protocol violation, not a pipelined friend.
        return Err(RequestError::BadRequest("body longer than Content-Length"));
    }
    let offset = leftover.len();
    leftover.resize(declared, 0);
    stream
        .read_exact(&mut leftover[offset..])
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => {
                RequestError::BadRequest("connection closed mid-body")
            }
            _ => RequestError::Io(e),
        })?;
    Ok(leftover)
}

/// Reads and validates one request. See [`RequestError`] for the
/// status each failure maps to.
///
/// # Errors
///
/// Any [`RequestError`]; malformed input is classified, not trusted.
pub fn read_request(stream: &mut impl Read) -> Result<Request, RequestError> {
    let head = match read_head(stream, MAX_HEAD_BYTES) {
        Ok(Some(parts)) => parts,
        Ok(None) => return Err(RequestError::HeadTooLarge),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(RequestError::BadRequest("truncated request head"))
        }
        Err(e) => return Err(RequestError::Io(e)),
    };
    let (head, leftover) = head;
    let mut lines = head.split(|&b| b == b'\n');
    let request_line = lines.next().unwrap_or_default();
    let request_line = std::str::from_utf8(request_line)
        .map_err(|_| RequestError::BadRequest("non-UTF-8 request line"))?
        .trim_end_matches('\r');
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => return Err(RequestError::BadRequest("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::BadRequest("unsupported protocol version"));
    }
    let declared = content_length(&head)
        .map_err(RequestError::BadRequest)?
        .unwrap_or(0);
    if declared > MAX_BODY_BYTES {
        return Err(RequestError::BodyTooLarge);
    }
    if declared == 0 && !leftover.is_empty() {
        return Err(RequestError::BadRequest("body without Content-Length"));
    }
    let body = read_body(stream, leftover, declared)?;
    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        body,
    })
}

/// Writes one request with `Content-Length` and `Connection: close`.
///
/// # Errors
///
/// Transport failures.
pub fn write_request(
    stream: &mut impl Write,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "{method} {target} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes one response with `Content-Length` and `Connection: close`.
///
/// # Errors
///
/// Transport failures.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads one response: `(status, body)`.
///
/// # Errors
///
/// Transport failures; a malformed response surfaces as
/// `InvalidData`, which is *not* transient — a server speaking
/// garbage will not improve on retry.
pub fn read_response(stream: &mut impl Read) -> std::io::Result<(u16, Vec<u8>)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let (head, leftover) =
        read_head(stream, MAX_HEAD_BYTES)?.ok_or_else(|| bad("response head too large"))?;
    let mut lines = head.split(|&b| b == b'\n');
    let status_line = std::str::from_utf8(lines.next().unwrap_or_default())
        .map_err(|_| bad("non-UTF-8 status line"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let declared = content_length(&head).map_err(bad)?.unwrap_or(0);
    if declared > MAX_BODY_BYTES {
        return Err(bad("response body too large"));
    }
    let body = read_body(stream, leftover, declared).map_err(|e| match e {
        RequestError::Io(io) => io,
        _ => bad("truncated response body"),
    })?;
    Ok((status, body))
}

/// The HTTP client backend: a [`StoreBackend`] whose records live on
/// a `ct serve` daemon. Cheap to clone; connections are per-operation
/// (matching the server's one-request-per-connection model), with
/// budget-aware retries for transient connect/transport errors and
/// `store.remote.*` counters plus a round-trip-latency histogram on
/// every operation.
#[derive(Debug, Clone)]
pub struct RemoteStore {
    authority: String,
    sink: MetricsSink,
}

impl RemoteStore {
    /// A client for the server at `authority` (`host:port`). No I/O
    /// happens until the first operation, so constructing a client
    /// for a down server is fine — the first operation fails and the
    /// caller degrades.
    pub fn connect(authority: impl Into<String>) -> Self {
        Self {
            authority: authority.into(),
            sink: MetricsSink::Global,
        }
    }

    /// Like [`RemoteStore::connect`], counting to a caller-owned
    /// registry — for tests that assert exact `store.remote.*` values.
    pub fn connect_with_registry(
        authority: impl Into<String>,
        registry: Arc<ct_obs::Registry>,
    ) -> Self {
        Self {
            authority: authority.into(),
            sink: MetricsSink::Local(registry),
        }
    }

    /// The `host:port` this client talks to.
    pub fn authority(&self) -> &str {
        &self.authority
    }

    fn add(&self, name: &str, delta: u64) {
        self.sink.add(name, delta);
    }

    /// One connect-request-response cycle, no retries.
    fn round_trip(
        &self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let addr = self
            .authority
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("store authority resolved to no address"))?;
        let mut stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        write_request(&mut stream, method, target, body)?;
        read_response(&mut stream)
    }

    /// A full operation: retries transient transport errors under the
    /// shared budget (counted like local retries), observes the
    /// round-trip latency, and converts terminal failures into
    /// [`StoreError`] after counting them as `store.remote.errors`.
    fn op(&self, method: &str, target: &str, body: &[u8]) -> Result<(u16, Vec<u8>), StoreError> {
        let started = Instant::now();
        let result = retry::retry(
            retry::is_remote_transient,
            |wait_ms| {
                self.add(ct_obs::names::STORE_RETRIES, 1);
                self.sink.observe(
                    ct_obs::names::STORE_RETRY_WAIT_MS,
                    &ct_obs::names::STORE_RETRY_WAIT_MS_BOUNDS,
                    wait_ms as f64,
                );
            },
            || self.round_trip(method, target, body),
        );
        self.sink.observe(
            ct_obs::names::STORE_REMOTE_RTT_MS,
            &ct_obs::names::STORE_REMOTE_RTT_MS_BOUNDS,
            started.elapsed().as_secs_f64() * 1000.0,
        );
        result.map_err(|e| self.fail(target, &e.to_string()))
    }

    /// Counts and builds the error for a failed operation.
    fn fail(&self, target: &str, message: &str) -> StoreError {
        self.add(ct_obs::names::STORE_REMOTE_ERRORS, 1);
        StoreError::Io {
            path: format!("http://{}{target}", self.authority),
            message: message.to_string(),
        }
    }

    fn object_target(key: &Digest) -> String {
        format!("/objects/{}", key.to_hex())
    }
}

impl StoreBackend for RemoteStore {
    fn get(&self, key: &Digest) -> Result<Option<Vec<u8>>, StoreError> {
        self.add(ct_obs::names::STORE_REMOTE_GETS, 1);
        let target = Self::object_target(key);
        let (status, body) = self.op("GET", &target, &[])?;
        match status {
            200 => match decode_record(&body) {
                Ok(payload) => {
                    self.add(ct_obs::names::STORE_REMOTE_HITS, 1);
                    Ok(Some(payload.to_vec()))
                }
                // The frame checksum caught wire damage: report a
                // miss so the caller recomputes, exactly like a
                // corrupt record on local disk.
                Err(_) => {
                    self.add(ct_obs::names::STORE_CORRUPT_RECORDS, 1);
                    Ok(None)
                }
            },
            404 => {
                self.add(ct_obs::names::STORE_REMOTE_MISSES, 1);
                Ok(None)
            }
            s => Err(self.fail(&target, &format!("unexpected status {s} for GET"))),
        }
    }

    fn put(&self, key: &Digest, payload: &[u8]) -> Result<(), StoreError> {
        self.add(ct_obs::names::STORE_REMOTE_PUTS, 1);
        let target = Self::object_target(key);
        let frame = encode_record(payload);
        let (status, _) = self.op("PUT", &target, &frame)?;
        match status {
            204 => Ok(()),
            s => Err(self.fail(&target, &format!("unexpected status {s} for PUT"))),
        }
    }

    fn evict(&self, key: &Digest) -> Result<bool, StoreError> {
        self.add(ct_obs::names::STORE_REMOTE_EVICTIONS, 1);
        let target = Self::object_target(key);
        let (status, body) = self.op("DELETE", &target, &[])?;
        match (status, body.as_slice()) {
            (200, b"1") => Ok(true),
            (200, b"0") => Ok(false),
            (s, _) => Err(self.fail(&target, &format!("unexpected status {s} for DELETE"))),
        }
    }

    fn invalidate(&self, key: &Digest) -> Result<(), StoreError> {
        self.add(ct_obs::names::STORE_REMOTE_EVICTIONS, 1);
        let target = format!("{}?corrupt=1", Self::object_target(key));
        let (status, _) = self.op("DELETE", &target, &[])?;
        match status {
            204 => Ok(()),
            s => Err(self.fail(&target, &format!("unexpected status {s} for DELETE"))),
        }
    }

    fn note_degraded(&self) {
        self.add(ct_obs::names::STORE_DEGRADED, 1);
    }

    fn clone_handle(&self) -> Arc<dyn StoreBackend> {
        Arc::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trips a request through the writer and the parser.
    fn reparse(method: &str, target: &str, body: &[u8]) -> Request {
        let mut wire = Vec::new();
        write_request(&mut wire, method, target, body).unwrap();
        read_request(&mut wire.as_slice()).unwrap()
    }

    #[test]
    fn request_codec_round_trips() {
        let req = reparse("PUT", "/objects/00ff", b"framed-bytes");
        assert_eq!(req.method, "PUT");
        assert_eq!(req.target, "/objects/00ff");
        assert_eq!(req.body, b"framed-bytes");
        let (path, query) = req.split_target();
        assert_eq!((path, query), ("/objects/00ff", ""));
    }

    #[test]
    fn query_params_parse() {
        let req = reparse("GET", "/probe?hazard=wind&realizations=60", &[]);
        let (path, query) = req.split_target();
        assert_eq!(path, "/probe");
        assert_eq!(query_param(query, "hazard"), Some("wind"));
        assert_eq!(query_param(query, "realizations"), Some("60"));
        assert_eq!(query_param(query, "scenario"), None);
    }

    #[test]
    fn response_codec_round_trips() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "OK", "text/plain", b"ok\n").unwrap();
        let (status, body) = read_response(&mut wire.as_slice()).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"ok\n");
    }

    #[test]
    fn garbage_is_classified_not_trusted() {
        let cases: &[(&[u8], u16)] = &[
            (b"nonsense\r\n\r\n", 400),
            (b"GET\r\n\r\n", 400),
            (b"GET /x SPDY/3\r\n\r\n", 400),
            (b"GET x HTTP/1.1\r\n\r\n", 400),
            (b"truncated-no-terminator", 400),
            (b"GET /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab", 400),
            (b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
        ];
        for (wire, want) in cases {
            let err = read_request(&mut &wire[..]).unwrap_err();
            let (status, _) = err.status().expect("answerable error");
            assert_eq!(status, *want, "wire {:?}", String::from_utf8_lossy(wire));
        }
    }

    #[test]
    fn oversized_declarations_are_rejected_without_reading() {
        let wire = format!(
            "PUT /objects/00 HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = read_request(&mut wire.as_bytes()).unwrap_err();
        assert_eq!(err.status(), Some((413, "Payload Too Large")));

        let mut huge_head = b"GET /x HTTP/1.1\r\n".to_vec();
        huge_head.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 2));
        let err = read_request(&mut huge_head.as_slice()).unwrap_err();
        assert_eq!(err.status(), Some((431, "Request Header Fields Too Large")));
    }

    #[test]
    fn down_server_degrades_with_counted_error() {
        let reg = Arc::new(ct_obs::Registry::new());
        // Reserve a port nobody is listening on by binding and
        // dropping; racy in principle, fine in practice.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let remote =
            RemoteStore::connect_with_registry(format!("127.0.0.1:{port}"), Arc::clone(&reg));
        let key = {
            let mut h = crate::hash::StableHasher::new();
            h.write_str("down");
            h.finish()
        };
        let backend: &dyn StoreBackend = &remote;
        assert!(backend.get(&key).is_err());
        backend.note_degraded();
        let snap = reg.snapshot();
        assert_eq!(snap.counter(ct_obs::names::STORE_REMOTE_GETS), Some(1));
        assert_eq!(snap.counter(ct_obs::names::STORE_REMOTE_ERRORS), Some(1));
        assert_eq!(snap.counter(ct_obs::names::STORE_DEGRADED), Some(1));
        // Connection-refused is transient: the default 3 ms budget
        // admits exactly two retries (1 ms + 2 ms).
        assert_eq!(snap.counter(ct_obs::names::STORE_RETRIES), Some(2));
    }
}
