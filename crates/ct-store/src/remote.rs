//! The remote store: a hand-rolled HTTP/1.1 wire protocol and the
//! client backend that speaks it.
//!
//! `ct serve` exposes a store over plain HTTP/1.1 so shards can run
//! on disjoint machines against one shared store. The protocol is
//! deliberately minimal — no dependencies, no chunked encoding —
//! because the workload is small framed records, not web traffic:
//!
//! ```text
//! GET    /objects/<hex32>            200 body = CTSTORE1 frame | 404 miss
//! PUT    /objects/<hex32>  frame →   204 stored
//! DELETE /objects/<hex32>            200 body = "1" | "0"  (evicted?)
//! DELETE /objects/<hex32>?corrupt=1  204 invalidated
//! GET    /probe?...                  200 state-probability CSV
//! GET    /healthz                    200 "ok\n"
//! GET    /metricsz                   200 ct-obs snapshot CSV
//! ```
//!
//! Object bodies are the [`crate::format`] CTSTORE1 frame — the same
//! bytes the loose layout stores on disk — so the record checksum
//! protects the payload *end to end*: a bit flipped on the wire is
//! caught by the receiver exactly like a bit rotted on disk. Every
//! message carries `Content-Length` and an explicit `Connection:`
//! header; connections are **kept alive and pipelined** by default
//! (HTTP/1.1 semantics: keep-alive unless either side says `close`,
//! and HTTP/1.0 peers get one request per connection exactly as
//! before). [`parse_request`] is the single incremental parser both
//! the server's readiness loop and the blocking [`read_request`]
//! helper build on, so framing limits ([`MAX_HEAD_BYTES`],
//! [`MAX_BODY_BYTES`]) apply identically on the one-shot and the
//! pipelined path.
//!
//! [`RemoteStore`] implements [`StoreBackend`] over this protocol
//! through a bounded [`crate::pool::ConnPool`] of kept-alive sockets
//! (`CT_REMOTE_POOL`), with the store's budget-aware transient
//! retries (`CT_STORE_RETRY_BUDGET_MS`, extended to
//! connection-lifecycle errors) — a stale pooled socket or a
//! briefly-restarting server costs milliseconds, and a dead one
//! degrades callers to compute-without-cache exactly like a failing
//! disk. Server answers are classified by status: 5xx and transport
//! failures are *transient* (retry-budget eligible), while any other
//! 4xx than a miss is *permanent* — the request itself is wrong, so
//! the retry loop is skipped and the refusal surfaces as
//! [`StoreError::RemotePermanent`].

use crate::backend::StoreBackend;
use crate::error::StoreError;
use crate::format::{decode_record, encode_record};
use crate::hash::Digest;
use crate::metrics::MetricsSink;
use crate::pool::ConnPool;
use crate::retry;
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Instant;

/// Cap on request/response head bytes (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Cap on body bytes; far above any record the pipeline produces.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// One parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// The method verbatim (`GET`, `PUT`, `DELETE`, ...).
    pub method: String,
    /// The request target verbatim (path plus optional `?query`).
    pub target: String,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// The negotiated connection mode: `Connection:` header if
    /// present, else the version default (1.1 keeps alive, 1.0
    /// closes). The response must echo this negotiation.
    pub keep_alive: bool,
}

impl Request {
    /// The target split at the first `?`: `(path, query)`, query
    /// empty when absent.
    pub fn split_target(&self) -> (&str, &str) {
        match self.target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (self.target.as_str(), ""),
        }
    }
}

/// One parsed HTTP/1.1 response.
#[derive(Debug)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the server negotiated keeping the connection open
    /// (same rules as requests); `false` means do not reuse the
    /// socket — which is what a PR-7 server always answers.
    pub keep_alive: bool,
}

/// The value of `name` in an `a=1&b=2` query string.
pub fn query_param<'a>(query: &'a str, name: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

/// Why a request could not be parsed; maps onto the 4xx the server
/// answers with (the worker survives every variant).
#[derive(Debug)]
pub enum RequestError {
    /// Garbage, truncation, or an unparsable frame: 400.
    BadRequest(&'static str),
    /// Head grew past [`MAX_HEAD_BYTES`]: 431.
    HeadTooLarge,
    /// `Content-Length` past [`MAX_BODY_BYTES`]: 413.
    BodyTooLarge,
    /// A transport error below HTTP; nothing to answer.
    Io(std::io::Error),
}

impl RequestError {
    /// The status line this error is answered with, or `None` when
    /// the transport is already gone.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            RequestError::BadRequest(_) => Some((400, "Bad Request")),
            RequestError::HeadTooLarge => Some((431, "Request Header Fields Too Large")),
            RequestError::BodyTooLarge => Some((413, "Payload Too Large")),
            RequestError::Io(_) => None,
        }
    }

    /// The one-line detail the 4xx body carries.
    pub fn detail(&self) -> &'static str {
        match self {
            RequestError::BadRequest(why) => why,
            _ => "request exceeds protocol limits",
        }
    }
}

/// The position of the `\r\n\r\n` head terminator in `buf`.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The `Content-Length` among raw header lines, if present and valid.
fn content_length(head: &[u8]) -> Result<Option<usize>, &'static str> {
    match header_value(head, "content-length")? {
        None => Ok(None),
        Some(v) => v
            .parse::<usize>()
            .map(Some)
            .map_err(|_| "unparsable Content-Length"),
    }
}

/// The trimmed value of header `name` (ASCII case-insensitive) among
/// raw header lines, or an error for a non-UTF-8 line.
fn header_value<'a>(head: &'a [u8], name: &str) -> Result<Option<&'a str>, &'static str> {
    for line in head.split(|&b| b == b'\n') {
        let line = std::str::from_utf8(line).map_err(|_| "non-UTF-8 header line")?;
        let Some((n, value)) = line.split_once(':') else {
            continue;
        };
        if n.trim().eq_ignore_ascii_case(name) {
            return Ok(Some(value.trim_end_matches('\r').trim()));
        }
    }
    Ok(None)
}

/// The negotiated connection mode for a message whose first line
/// declared `version`: an explicit `Connection:` header wins, else
/// HTTP/1.1 keeps alive and HTTP/1.0 closes.
fn negotiated_keep_alive(head: &[u8], version: &str) -> bool {
    match header_value(head, "connection") {
        Ok(Some(v)) if v.eq_ignore_ascii_case("close") => false,
        Ok(Some(v)) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => version != "HTTP/1.0",
    }
}

/// Incrementally parses one request from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a prefix of a request
/// (read more and call again), or `Ok(Some((request, consumed)))`
/// where `consumed` bytes belong to this request — anything after
/// them is the next pipelined request. The head and body caps apply
/// per request, so a pipelined stream obeys exactly the limits of
/// the one-shot path.
///
/// # Errors
///
/// Any [`RequestError`] except `Io` (this function does no I/O);
/// malformed input is classified, not trusted.
#[allow(clippy::type_complexity)]
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, RequestError> {
    let Some(head_len) = head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RequestError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(RequestError::HeadTooLarge);
    }
    let head = &buf[..head_len];
    let request_line = head.split(|&b| b == b'\n').next().unwrap_or_default();
    let request_line = std::str::from_utf8(request_line)
        .map_err(|_| RequestError::BadRequest("non-UTF-8 request line"))?
        .trim_end_matches('\r');
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => return Err(RequestError::BadRequest("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::BadRequest("unsupported protocol version"));
    }
    let declared = content_length(head)
        .map_err(RequestError::BadRequest)?
        .unwrap_or(0);
    if declared > MAX_BODY_BYTES {
        return Err(RequestError::BodyTooLarge);
    }
    let body_start = head_len + 4;
    let consumed = body_start + declared;
    if buf.len() < consumed {
        return Ok(None);
    }
    Ok(Some((
        Request {
            method: method.to_string(),
            target: target.to_string(),
            body: buf[body_start..consumed].to_vec(),
            keep_alive: negotiated_keep_alive(head, version),
        },
        consumed,
    )))
}

/// Reads and validates one request from a blocking stream — the
/// one-shot convenience over [`parse_request`] used by tests and
/// simple clients; the server's readiness loop drives the parser
/// directly.
///
/// # Errors
///
/// Any [`RequestError`]; malformed input is classified, not trusted.
pub fn read_request(stream: &mut impl Read) -> Result<Request, RequestError> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 2048];
    loop {
        if let Some((request, _)) = parse_request(&buf)? {
            return Ok(request);
        }
        let n = stream.read(&mut chunk).map_err(RequestError::Io)?;
        if n == 0 {
            return Err(RequestError::BadRequest(if head_end(&buf).is_some() {
                "connection closed mid-body"
            } else {
                "truncated request head"
            }));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// The header `Connection:` carries for a negotiated mode.
fn connection_header(keep_alive: bool) -> &'static str {
    if keep_alive {
        "keep-alive"
    } else {
        "close"
    }
}

/// Encodes one request with `Content-Length` and the negotiated
/// `Connection:` header.
pub fn encode_request(method: &str, target: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let mut wire = format!(
        "{method} {target} HTTP/1.1\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        connection_header(keep_alive)
    )
    .into_bytes();
    wire.extend_from_slice(body);
    wire
}

/// Writes one request ([`encode_request`]) to a blocking stream.
///
/// # Errors
///
/// Transport failures.
pub fn write_request(
    stream: &mut impl Write,
    method: &str,
    target: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    stream.write_all(&encode_request(method, target, body, keep_alive))?;
    stream.flush()
}

/// Encodes one response with `Content-Length` and the negotiated
/// `Connection:` header — the header reflects what the server will
/// actually do with the socket, never an unconditional `close`.
pub fn encode_response(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut wire = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        connection_header(keep_alive)
    )
    .into_bytes();
    wire.extend_from_slice(body);
    wire
}

/// Writes one response ([`encode_response`]) to a blocking stream.
///
/// # Errors
///
/// Transport failures.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    stream.write_all(&encode_response(
        status,
        reason,
        content_type,
        body,
        keep_alive,
    ))?;
    stream.flush()
}

/// Reads one response from a blocking stream.
///
/// # Errors
///
/// Transport failures; a malformed response surfaces as
/// `InvalidData`, which is *not* transient — a server speaking
/// garbage will not improve on retry.
pub fn read_response(stream: &mut impl Read) -> std::io::Result<Response> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 2048];
    loop {
        if let Some((response, used)) = parse_response(&buf)? {
            if buf.len() > used {
                // Bytes past the declared body would belong to a
                // *pipelined response*, but this reader asked one
                // question — a server volunteering extras is speaking
                // garbage.
                return Err(bad("response body longer than Content-Length"));
            }
            return Ok(response);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before the end of the response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Tries to parse one complete response from the front of `buf`.
///
/// `Ok(None)` means the buffer holds a valid *prefix* — read more
/// bytes and try again. `Ok(Some((response, used)))` consumed
/// `buf[..used]`, leaving any pipelined successor in place — this is
/// what lets a benchmark client keep several requests in flight on
/// one socket and peel answers off as they land.
///
/// # Errors
///
/// `InvalidData` for oversized heads/bodies and malformed status
/// lines: transport worked, the peer is not speaking our HTTP.
pub fn parse_response(buf: &[u8]) -> std::io::Result<Option<(Response, usize)>> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let Some(head_len) = head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(bad("response head too large"));
        }
        return Ok(None);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(bad("response head too large"));
    }
    let head = &buf[..head_len];
    let status_line = std::str::from_utf8(head.split(|&b| b == b'\n').next().unwrap_or_default())
        .map_err(|_| bad("non-UTF-8 status line"))?
        .trim_end_matches('\r');
    let mut parts = status_line.split(' ');
    let version = parts.next().unwrap_or_default();
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let declared = content_length(head).map_err(bad)?.unwrap_or(0);
    if declared > MAX_BODY_BYTES {
        return Err(bad("response body too large"));
    }
    let body_start = head_len + 4;
    if buf.len() < body_start + declared {
        return Ok(None);
    }
    let body = buf[body_start..body_start + declared].to_vec();
    Ok(Some((
        Response {
            status,
            body,
            keep_alive: negotiated_keep_alive(head, version),
        },
        body_start + declared,
    )))
}

/// The HTTP client backend: a [`StoreBackend`] whose records live on
/// a `ct serve` daemon. Cheap to clone — clones share one bounded
/// [`ConnPool`] of kept-alive sockets (`CT_REMOTE_POOL`,
/// health-checked on checkout), so shard/merge runs stop paying a
/// TCP dial per artifact. Budget-aware retries absorb transient
/// connect/transport errors (a retired stale socket redials under
/// the same budget), `store.remote.*` counters and a round-trip
/// histogram cover every operation, and permanent 4xx refusals skip
/// the retry loop entirely.
#[derive(Debug, Clone)]
pub struct RemoteStore {
    authority: String,
    sink: MetricsSink,
    pool: Arc<ConnPool>,
}

impl RemoteStore {
    /// A client for the server at `authority` (`host:port`). No I/O
    /// happens until the first operation, so constructing a client
    /// for a down server is fine — the first operation fails and the
    /// caller degrades.
    pub fn connect(authority: impl Into<String>) -> Self {
        Self::with_sink(authority.into(), MetricsSink::Global)
    }

    /// Like [`RemoteStore::connect`], counting to a caller-owned
    /// registry — for tests that assert exact `store.remote.*` values.
    pub fn connect_with_registry(
        authority: impl Into<String>,
        registry: Arc<ct_obs::Registry>,
    ) -> Self {
        Self::with_sink(authority.into(), MetricsSink::Local(registry))
    }

    fn with_sink(authority: String, sink: MetricsSink) -> Self {
        let pool = Arc::new(ConnPool::new(authority.clone(), sink.clone()));
        Self {
            authority,
            sink,
            pool,
        }
    }

    /// The `host:port` this client talks to.
    pub fn authority(&self) -> &str {
        &self.authority
    }

    fn add(&self, name: &str, delta: u64) {
        self.sink.add(name, delta);
    }

    /// One request-response cycle on a pooled connection, no retries.
    /// The socket goes back to the pool only after a clean exchange
    /// on which the server negotiated keep-alive; every failure path
    /// drops it, so a broken connection is never reused.
    fn round_trip(
        &self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let mut stream = self.pool.checkout()?;
        let exchange = (|| {
            write_request(&mut stream, method, target, body, true)?;
            read_response(&mut stream)
        })();
        let response = exchange?;
        if (500..=599).contains(&response.status) {
            // A server-side failure is transient by classification:
            // surface it as a retryable connection-lifecycle error so
            // the retry budget applies, and drop the socket — the
            // server's state is suspect.
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                format!("server answered {} for {method}", response.status),
            ));
        }
        if response.keep_alive {
            self.pool.checkin(stream);
        }
        Ok((response.status, response.body))
    }

    /// A full operation: retries transient transport errors and 5xx
    /// answers under the shared budget (counted like local retries),
    /// observes the round-trip latency, classifies any 4xx other
    /// than a miss as permanent (`store.remote.permanent`, no
    /// retries), and converts terminal transport failures into
    /// [`StoreError`] after counting them as `store.remote.errors`.
    fn op(&self, method: &str, target: &str, body: &[u8]) -> Result<(u16, Vec<u8>), StoreError> {
        let started = Instant::now();
        let result = retry::retry(
            retry::is_remote_transient,
            |wait_ms| {
                self.add(ct_obs::names::STORE_RETRIES, 1);
                self.sink.observe(
                    ct_obs::names::STORE_RETRY_WAIT_MS,
                    &ct_obs::names::STORE_RETRY_WAIT_MS_BOUNDS,
                    wait_ms as f64,
                );
            },
            || self.round_trip(method, target, body),
        );
        self.sink.observe(
            ct_obs::names::STORE_REMOTE_RTT_MS,
            &ct_obs::names::STORE_REMOTE_RTT_MS_BOUNDS,
            started.elapsed().as_secs_f64() * 1000.0,
        );
        let (status, body) = result.map_err(|e| self.fail(target, &e.to_string()))?;
        if (400..=499).contains(&status) && status != 404 {
            // The request itself was refused: retrying would repeat
            // the refusal byte for byte, so it skips the retry loop
            // and surfaces with the server's explanation attached.
            self.add(ct_obs::names::STORE_REMOTE_PERMANENT, 1);
            return Err(StoreError::RemotePermanent {
                url: format!("http://{}{target}", self.authority),
                status,
                message: String::from_utf8_lossy(&body).trim().to_string(),
            });
        }
        Ok((status, body))
    }

    /// Counts and builds the error for a failed operation.
    fn fail(&self, target: &str, message: &str) -> StoreError {
        self.add(ct_obs::names::STORE_REMOTE_ERRORS, 1);
        StoreError::Io {
            path: format!("http://{}{target}", self.authority),
            message: message.to_string(),
        }
    }

    fn object_target(key: &Digest) -> String {
        format!("/objects/{}", key.to_hex())
    }
}

impl StoreBackend for RemoteStore {
    fn get(&self, key: &Digest) -> Result<Option<Vec<u8>>, StoreError> {
        self.add(ct_obs::names::STORE_REMOTE_GETS, 1);
        let target = Self::object_target(key);
        let (status, body) = self.op("GET", &target, &[])?;
        match status {
            200 => match decode_record(&body) {
                Ok(payload) => {
                    self.add(ct_obs::names::STORE_REMOTE_HITS, 1);
                    Ok(Some(payload.to_vec()))
                }
                // The frame checksum caught wire damage: report a
                // miss so the caller recomputes, exactly like a
                // corrupt record on local disk.
                Err(_) => {
                    self.add(ct_obs::names::STORE_CORRUPT_RECORDS, 1);
                    Ok(None)
                }
            },
            404 => {
                self.add(ct_obs::names::STORE_REMOTE_MISSES, 1);
                Ok(None)
            }
            s => Err(self.fail(&target, &format!("unexpected status {s} for GET"))),
        }
    }

    fn put(&self, key: &Digest, payload: &[u8]) -> Result<(), StoreError> {
        self.add(ct_obs::names::STORE_REMOTE_PUTS, 1);
        let target = Self::object_target(key);
        let frame = encode_record(payload);
        let (status, _) = self.op("PUT", &target, &frame)?;
        match status {
            204 => Ok(()),
            s => Err(self.fail(&target, &format!("unexpected status {s} for PUT"))),
        }
    }

    fn evict(&self, key: &Digest) -> Result<bool, StoreError> {
        self.add(ct_obs::names::STORE_REMOTE_EVICTIONS, 1);
        let target = Self::object_target(key);
        let (status, body) = self.op("DELETE", &target, &[])?;
        match (status, body.as_slice()) {
            (200, b"1") => Ok(true),
            (200, b"0") => Ok(false),
            (s, _) => Err(self.fail(&target, &format!("unexpected status {s} for DELETE"))),
        }
    }

    fn invalidate(&self, key: &Digest) -> Result<(), StoreError> {
        self.add(ct_obs::names::STORE_REMOTE_EVICTIONS, 1);
        let target = format!("{}?corrupt=1", Self::object_target(key));
        let (status, _) = self.op("DELETE", &target, &[])?;
        match status {
            204 => Ok(()),
            s => Err(self.fail(&target, &format!("unexpected status {s} for DELETE"))),
        }
    }

    fn note_degraded(&self) {
        self.add(ct_obs::names::STORE_DEGRADED, 1);
    }

    fn clone_handle(&self) -> Arc<dyn StoreBackend> {
        Arc::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trips a request through the writer and the parser.
    fn reparse(method: &str, target: &str, body: &[u8]) -> Request {
        let mut wire = Vec::new();
        write_request(&mut wire, method, target, body, true).unwrap();
        read_request(&mut wire.as_slice()).unwrap()
    }

    #[test]
    fn request_codec_round_trips() {
        let req = reparse("PUT", "/objects/00ff", b"framed-bytes");
        assert_eq!(req.method, "PUT");
        assert_eq!(req.target, "/objects/00ff");
        assert_eq!(req.body, b"framed-bytes");
        assert!(req.keep_alive);
        let (path, query) = req.split_target();
        assert_eq!((path, query), ("/objects/00ff", ""));
    }

    #[test]
    fn connection_mode_negotiates_by_header_and_version() {
        let cases: &[(&[u8], bool)] = &[
            (b"GET /x HTTP/1.1\r\n\r\n", true),
            (b"GET /x HTTP/1.0\r\n\r\n", false),
            (b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n", false),
            (b"GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true),
            (b"GET /x HTTP/1.1\r\nConnection: CLOSE\r\n\r\n", false),
        ];
        for (wire, want) in cases {
            let (req, _) = parse_request(wire).unwrap().expect("complete request");
            assert_eq!(
                req.keep_alive,
                *want,
                "wire {:?}",
                String::from_utf8_lossy(wire)
            );
        }
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let mut wire = encode_request("GET", "/healthz", &[], true);
        wire.extend(encode_request("PUT", "/objects/00ff", b"body!", true));
        wire.extend(encode_request("GET", "/metricsz", &[], false));
        let (first, used) = parse_request(&wire).unwrap().expect("first");
        assert_eq!(first.target, "/healthz");
        let (second, used2) = parse_request(&wire[used..]).unwrap().expect("second");
        assert_eq!(second.target, "/objects/00ff");
        assert_eq!(second.body, b"body!");
        let (third, used3) = parse_request(&wire[used + used2..])
            .unwrap()
            .expect("third");
        assert_eq!(third.target, "/metricsz");
        assert!(!third.keep_alive);
        assert_eq!(used + used2 + used3, wire.len());
        // A trailing fragment of the next request is "need more
        // bytes", never an error.
        assert!(parse_request(&wire[used..used + 3]).unwrap().is_none());
    }

    #[test]
    fn partial_reads_are_need_more_not_errors() {
        let wire = encode_request("PUT", "/objects/00ff", b"framed-bytes", true);
        for cut in 0..wire.len() {
            let parsed = parse_request(&wire[..cut]).unwrap();
            assert!(parsed.is_none(), "cut at {cut} should need more bytes");
        }
        let (req, consumed) = parse_request(&wire).unwrap().expect("complete");
        assert_eq!(consumed, wire.len());
        assert_eq!(req.body, b"framed-bytes");
    }

    #[test]
    fn query_params_parse() {
        let req = reparse("GET", "/probe?hazard=wind&realizations=60", &[]);
        let (path, query) = req.split_target();
        assert_eq!(path, "/probe");
        assert_eq!(query_param(query, "hazard"), Some("wind"));
        assert_eq!(query_param(query, "realizations"), Some("60"));
        assert_eq!(query_param(query, "scenario"), None);
    }

    #[test]
    fn response_codec_round_trips_both_modes() {
        for keep_alive in [true, false] {
            let mut wire = Vec::new();
            write_response(&mut wire, 200, "OK", "text/plain", b"ok\n", keep_alive).unwrap();
            let response = read_response(&mut wire.as_slice()).unwrap();
            assert_eq!(response.status, 200);
            assert_eq!(response.body, b"ok\n");
            assert_eq!(response.keep_alive, keep_alive);
        }
    }

    #[test]
    fn garbage_is_classified_not_trusted() {
        let cases: &[(&[u8], u16)] = &[
            (b"nonsense\r\n\r\n", 400),
            (b"GET\r\n\r\n", 400),
            (b"GET /x SPDY/3\r\n\r\n", 400),
            (b"GET x HTTP/1.1\r\n\r\n", 400),
            (b"truncated-no-terminator", 400),
            (b"GET /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab", 400),
            (b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
        ];
        for (wire, want) in cases {
            let err = read_request(&mut &wire[..]).unwrap_err();
            let (status, _) = err.status().expect("answerable error");
            assert_eq!(status, *want, "wire {:?}", String::from_utf8_lossy(wire));
        }
    }

    #[test]
    fn oversized_declarations_are_rejected_without_reading() {
        let wire = format!(
            "PUT /objects/00 HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = read_request(&mut wire.as_bytes()).unwrap_err();
        assert_eq!(err.status(), Some((413, "Payload Too Large")));

        let mut huge_head = b"GET /x HTTP/1.1\r\n".to_vec();
        huge_head.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 2));
        let err = read_request(&mut huge_head.as_slice()).unwrap_err();
        assert_eq!(err.status(), Some((431, "Request Header Fields Too Large")));
    }

    #[test]
    fn down_server_degrades_with_counted_error() {
        let reg = Arc::new(ct_obs::Registry::new());
        // Reserve a port nobody is listening on by binding and
        // dropping; racy in principle, fine in practice.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let remote =
            RemoteStore::connect_with_registry(format!("127.0.0.1:{port}"), Arc::clone(&reg));
        let key = {
            let mut h = crate::hash::StableHasher::new();
            h.write_str("down");
            h.finish()
        };
        let backend: &dyn StoreBackend = &remote;
        assert!(backend.get(&key).is_err());
        backend.note_degraded();
        let snap = reg.snapshot();
        assert_eq!(snap.counter(ct_obs::names::STORE_REMOTE_GETS), Some(1));
        assert_eq!(snap.counter(ct_obs::names::STORE_REMOTE_ERRORS), Some(1));
        assert_eq!(snap.counter(ct_obs::names::STORE_DEGRADED), Some(1));
        // Connection-refused is transient: the default 3 ms budget
        // admits exactly two retries (1 ms + 2 ms), each a fresh dial
        // through the pool.
        assert_eq!(snap.counter(ct_obs::names::STORE_RETRIES), Some(2));
        assert_eq!(
            snap.counter(ct_obs::names::STORE_REMOTE_POOL_DIALS),
            Some(3)
        );
        assert_eq!(
            snap.counter(ct_obs::names::STORE_REMOTE_PERMANENT)
                .unwrap_or(0),
            0
        );
    }

    #[test]
    fn permanent_refusals_skip_the_retry_loop() {
        let reg = Arc::new(ct_obs::Registry::new());
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Answer every request with a 405 refusal, once each.
            for _ in 0..1 {
                let (mut stream, _) = listener.accept().unwrap();
                let _ = read_request(&mut stream).unwrap();
                write_response(
                    &mut stream,
                    405,
                    "Method Not Allowed",
                    "text/plain",
                    b"no",
                    false,
                )
                .unwrap();
            }
        });
        let remote = RemoteStore::connect_with_registry(addr.to_string(), Arc::clone(&reg));
        let key = {
            let mut h = crate::hash::StableHasher::new();
            h.write_str("permanent");
            h.finish()
        };
        let err = StoreBackend::get(&remote, &key).unwrap_err();
        match &err {
            StoreError::RemotePermanent { status, .. } => assert_eq!(*status, 405),
            other => panic!("want RemotePermanent, got {other:?}"),
        }
        assert!(err.to_string().contains("405"), "got: {err}");
        server.join().unwrap();
        let snap = reg.snapshot();
        // No retries: the refusal is permanent, one dial total.
        assert_eq!(snap.counter(ct_obs::names::STORE_RETRIES).unwrap_or(0), 0);
        assert_eq!(snap.counter(ct_obs::names::STORE_REMOTE_PERMANENT), Some(1));
        assert_eq!(
            snap.counter(ct_obs::names::STORE_REMOTE_POOL_DIALS),
            Some(1)
        );
        assert_eq!(
            snap.counter(ct_obs::names::STORE_REMOTE_ERRORS)
                .unwrap_or(0),
            0
        );
    }
}
