//! The on-disk store: content-addressed records under a root
//! directory.
//!
//! Layout:
//!
//! ```text
//! <root>/objects/<hh>/<hex32>.rec   records, sharded by first hex byte
//! <root>/tmp/                       staging area for atomic writes
//! ```
//!
//! Writes are crash-safe: the frame is written to a unique file under
//! `tmp/` and then `rename`d into place (followed by an fsync of the
//! shard directory, so the rename itself survives power loss), so a
//! reader never observes a half-written record at its final path. A
//! crash can only leave a stale temp file, which is invisible to
//! lookups and swept by [`Store::open`]/[`Store::fsck`] once it is
//! old enough to be provably orphaned. Reads validate the record
//! frame and *evict* anything corrupt, reporting a miss — so a torn
//! record from a `kill -9` degrades to recompute-and-rewrite.
//!
//! Transient I/O errors (`Interrupted`/`TimedOut`/`WouldBlock`) are
//! absorbed by a small bounded retry-with-backoff (`CT_STORE_RETRIES`
//! extra attempts, default 2, counted as `store.retries`); everything
//! else surfaces as [`StoreError::Io`] for callers to degrade on.
//! Every fragile operation passes a named failpoint
//! ([`crate::faults`]) so the crash paths are testable
//! deterministically.
//!
//! Every operation reports to [`ct_obs`] counters (`store.hits`,
//! `store.misses`, `store.records_written`, `store.corrupt_records`,
//! `store.evictions`, `store.retries`, `store.degraded`,
//! `store.tmp_swept`). Methods deliberately open no [`ct_obs`] spans:
//! they are called from worker threads, and spans are reserved for
//! coordinator code so the span tree stays thread-count invariant.

use crate::error::StoreError;
use crate::faults::{self, FaultKind, FaultRegistry};
use crate::format::{decode_record, encode_record};
use crate::hash::Digest;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Where a store reports its metrics.
#[derive(Debug, Clone)]
enum MetricsSink {
    /// The process-global [`ct_obs`] registry (the default).
    Global,
    /// A caller-owned registry — used by tests that need exact counter
    /// assertions without racing other threads on the global registry.
    Local(Arc<ct_obs::Registry>),
}

/// Which fault registry a store's failpoints consult.
#[derive(Debug, Clone)]
enum FaultsHandle {
    /// The process-global registry, armed from `CT_FAULTS`.
    Global,
    /// A caller-owned registry — used by tests that arm faults without
    /// racing other tests on the global registry.
    Local(Arc<FaultRegistry>),
}

/// A handle to a content-addressed artifact store rooted at a
/// directory. Cheap to clone; all state lives on disk.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    sink: MetricsSink,
    faults: FaultsHandle,
}

/// Distinguishes this process's concurrent writers staging into the
/// same `tmp/`.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Tmp files older than this are treated as orphans of a crashed
/// writer by the open-time sweep: no healthy `put` stages a file for
/// anywhere near this long, so sweeping cannot race a live writer.
pub const DEFAULT_TMP_MAX_AGE: Duration = Duration::from_secs(3600);

/// A per-process random nonce baked into staged filenames, so two
/// processes sharing a store (the sharded-run case) cannot collide in
/// `tmp/` even if the OS recycles a crashed writer's PID.
fn startup_nonce() -> u64 {
    static NONCE: OnceLock<u64> = OnceLock::new();
    *NONCE.get_or_init(|| {
        // No `rand` dependency by policy; mix whatever per-process
        // entropy std exposes — boot-relative time, PID, and ASLR —
        // through the store's own hash.
        let mut seed = Vec::new();
        let now = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .unwrap_or_default();
        seed.extend_from_slice(&now.as_nanos().to_le_bytes());
        seed.extend_from_slice(&std::process::id().to_le_bytes());
        seed.extend_from_slice(&(startup_nonce as fn() -> u64 as usize as u64).to_le_bytes());
        crate::hash::checksum64(&seed)
    })
}

/// Extra attempts `get`/`put` spend on transient I/O errors before
/// giving up (configurable via `CT_STORE_RETRIES`; default 2).
fn retry_budget() -> u32 {
    static BUDGET: OnceLock<u32> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("CT_STORE_RETRIES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2)
    })
}

/// The error classes worth retrying: scheduler noise and timeouts.
/// Disk-full, permissions, and corruption are not transient — retrying
/// them only delays the caller's degradation path.
fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
    )
}

/// Opens `dir` and fsyncs it, making a just-renamed directory entry
/// durable. The sole dir-fsync helper — `put` goes through here, and
/// the `store.put.sync_dir` failpoint tests its failure path.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`, reporting
    /// metrics to the global [`ct_obs`] registry and consulting the
    /// global fault registry. Stale `tmp/` orphans (older than
    /// [`DEFAULT_TMP_MAX_AGE`]) are swept as a side effect,
    /// best-effort.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory tree cannot be
    /// created.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_inner(root.as_ref(), MetricsSink::Global, FaultsHandle::Global)
    }

    /// Like [`Store::open`], but reporting to a caller-owned registry.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory tree cannot be
    /// created.
    pub fn open_with_registry(
        root: impl AsRef<Path>,
        registry: Arc<ct_obs::Registry>,
    ) -> Result<Self, StoreError> {
        Self::open_inner(
            root.as_ref(),
            MetricsSink::Local(registry),
            FaultsHandle::Global,
        )
    }

    /// Like [`Store::open_with_registry`], but also consulting a
    /// caller-owned fault registry — the test-facing constructor for
    /// deterministic fault injection with exact counter assertions.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory tree cannot be
    /// created.
    pub fn open_with_faults(
        root: impl AsRef<Path>,
        registry: Arc<ct_obs::Registry>,
        faults: Arc<FaultRegistry>,
    ) -> Result<Self, StoreError> {
        Self::open_inner(
            root.as_ref(),
            MetricsSink::Local(registry),
            FaultsHandle::Local(faults),
        )
    }

    fn open_inner(
        root: &Path,
        sink: MetricsSink,
        faults: FaultsHandle,
    ) -> Result<Self, StoreError> {
        for dir in [root.join("objects"), root.join("tmp")] {
            fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, &e))?;
        }
        let store = Self {
            root: root.to_path_buf(),
            sink,
            faults,
        };
        // Crashed writers leave staging files behind forever otherwise;
        // the age threshold keeps us clear of any live writer. Sweep
        // failures must not fail `open` — the store works regardless.
        let _ = store.sweep_tmp(DEFAULT_TMP_MAX_AGE);
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path a record for `key` lives at (whether or not it
    /// exists yet). Exposed for tests and tooling that inspect or
    /// damage records deliberately.
    pub fn record_path(&self, key: &Digest) -> PathBuf {
        let hex = key.to_hex();
        self.root
            .join("objects")
            .join(&hex[0..2])
            .join(format!("{hex}.rec"))
    }

    fn add(&self, name: &str, delta: u64) {
        match &self.sink {
            MetricsSink::Global => ct_obs::add(name, delta),
            MetricsSink::Local(r) => r.counter(name).add(delta),
        }
    }

    fn observe_bytes(&self, len: usize) {
        let bounds = &ct_obs::names::STORE_RECORD_BYTES_BOUNDS;
        let h = match &self.sink {
            MetricsSink::Global => ct_obs::histogram(ct_obs::names::STORE_RECORD_BYTES, bounds),
            MetricsSink::Local(r) => r.histogram(ct_obs::names::STORE_RECORD_BYTES, bounds),
        };
        h.observe(len as f64);
    }

    /// Consults this store's fault registry for `site`. Public so the
    /// layers above the store (`ct-hydro`'s cache, the core pipeline)
    /// can place their own failpoints on the same registry a test (or
    /// `CT_FAULTS`) armed.
    pub fn injected_fault(&self, site: &str) -> Option<FaultKind> {
        match &self.faults {
            FaultsHandle::Global => faults::global().hit(site),
            FaultsHandle::Local(r) => r.hit(site),
        }
    }

    /// Records that a caller absorbed a store failure by degrading to
    /// compute-without-cache (counted as `store.degraded`). The store
    /// cannot see the degradation itself — it happens in the caller's
    /// recovery path — so callers report it here, onto the same
    /// metrics sink as the store's own counters.
    pub fn note_degraded(&self) {
        self.add(ct_obs::names::STORE_DEGRADED, 1);
    }

    /// Runs `op`, retrying transient I/O errors with exponential
    /// backoff up to the configured budget. Non-transient errors and
    /// exhausted budgets surface unchanged.
    fn retry_transient<T>(&self, mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
        let budget = retry_budget();
        let mut attempt = 0;
        loop {
            match op() {
                Err(e) if attempt < budget && is_transient(&e) => {
                    attempt += 1;
                    self.add(ct_obs::names::STORE_RETRIES, 1);
                    std::thread::sleep(Duration::from_millis(1 << (attempt - 1).min(6)));
                }
                other => return other,
            }
        }
    }

    /// Fetches the payload stored under `key`.
    ///
    /// Returns `Ok(None)` on a miss *and* on a corrupt record: a
    /// record that fails frame validation (truncated, bad magic, wrong
    /// version, checksum mismatch) is counted as `store.corrupt_records`,
    /// evicted from disk, and reported as a miss, so the caller's
    /// recompute-and-rewrite path handles both cases identically.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] only for environmental failures
    /// (e.g. permission errors) that survive the transient-retry
    /// budget — never for corrupt content.
    pub fn get(&self, key: &Digest) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.record_path(key);
        let read = self.retry_transient(|| {
            let fault = self.injected_fault(faults::sites::STORE_GET_READ);
            if let Some(kind @ (FaultKind::Io | FaultKind::Enospc)) = fault {
                return Err(kind.io_error());
            }
            let mut bytes = fs::read(&path)?;
            match fault {
                // A read that tears or bit-rots in flight: the frame
                // checksum below must catch both.
                Some(FaultKind::Corruption) => {
                    if let Some(b) = bytes.last_mut() {
                        *b ^= 0x01;
                    }
                }
                Some(FaultKind::PartialWrite) => bytes.truncate(bytes.len() / 2),
                _ => {}
            }
            Ok(bytes)
        });
        let bytes = match read {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.add(ct_obs::names::STORE_MISSES, 1);
                return Ok(None);
            }
            Err(e) => return Err(StoreError::io(&path, &e)),
        };
        match decode_record(&bytes) {
            Ok(payload) => {
                self.add(ct_obs::names::STORE_HITS, 1);
                Ok(Some(payload.to_vec()))
            }
            Err(_corruption) => {
                self.add(ct_obs::names::STORE_CORRUPT_RECORDS, 1);
                self.remove_file(&path)?;
                Ok(None)
            }
        }
    }

    /// Writes the framed bytes to the staged temp file and flushes
    /// them to stable storage. The `store.put.write` failpoint sits
    /// here: `io`/`enospc` fail the write, `corrupt` silently mangles
    /// the frame (the write "succeeds"; the checksum catches it on
    /// read), `torn` persists half the frame and then errors, like a
    /// crash mid-write.
    fn stage(&self, tmp: &Path, frame: &[u8]) -> std::io::Result<()> {
        let mut f = fs::File::create(tmp)?;
        match self.injected_fault(faults::sites::STORE_PUT_WRITE) {
            Some(kind @ (FaultKind::Io | FaultKind::Enospc)) => return Err(kind.io_error()),
            Some(FaultKind::PartialWrite) => {
                f.write_all(&frame[..frame.len() / 2])?;
                f.sync_all()?;
                return Err(FaultKind::PartialWrite.io_error());
            }
            Some(FaultKind::Corruption) => {
                let mut mangled = frame.to_vec();
                if let Some(b) = mangled.last_mut() {
                    *b ^= 0x01;
                }
                f.write_all(&mangled)?;
            }
            None => f.write_all(frame)?,
        }
        // Flush to stable storage before the rename publishes the
        // record, so a crash cannot expose an empty committed file.
        f.sync_all()
    }

    /// A fresh, never-reused staging path for a `put` of `key`. The
    /// name carries the key (debuggability), PID plus a per-process
    /// startup nonce (uniqueness across the processes of a sharded
    /// run, even under PID reuse), and a process-local sequence
    /// (uniqueness across this process's concurrent writers).
    fn staged_path(&self, key: &Digest) -> PathBuf {
        self.root.join("tmp").join(format!(
            "{}.{}.{:016x}.{}.tmp",
            key.to_hex(),
            std::process::id(),
            startup_nonce(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// Atomically writes `payload` as the record for `key`,
    /// overwriting any existing record. Durable on return: the staged
    /// file is fsynced before the rename, and the shard directory is
    /// fsynced after it, so a power cut cannot un-commit the record.
    /// On failure the staged temp file is removed (best-effort), so an
    /// *erroring* put leaves no residue — only a crashed process can
    /// orphan a temp file, and the open-time sweep collects those.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when staging, renaming, or the
    /// directory fsync fails past the transient-retry budget.
    pub fn put(&self, key: &Digest, payload: &[u8]) -> Result<(), StoreError> {
        let path = self.record_path(key);
        let dir = path.parent().expect("record path has a parent");
        fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, &e))?;

        let tmp = self.staged_path(key);
        let frame = encode_record(payload);
        let staged = self
            .retry_transient(|| self.stage(&tmp, &frame))
            .and_then(|()| {
                self.retry_transient(|| {
                    if let Some(kind) = self.injected_fault(faults::sites::STORE_PUT_RENAME) {
                        return Err(kind.io_error());
                    }
                    fs::rename(&tmp, &path)
                })
            });
        if let Err(e) = staged {
            // Tmp hygiene: never leave our own staging residue behind.
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::io(&path, &e));
        }
        if let Err(e) = self.retry_transient(|| {
            if let Some(kind) = self.injected_fault(faults::sites::STORE_PUT_SYNC_DIR) {
                return Err(kind.io_error());
            }
            fsync_dir(dir)
        }) {
            // The rename already landed; the record is visible but its
            // directory entry is not yet provably durable.
            return Err(StoreError::io(dir, &e));
        }
        self.add(ct_obs::names::STORE_RECORDS_WRITTEN, 1);
        self.observe_bytes(frame.len());
        Ok(())
    }

    /// Removes the record for `key` because its *payload* failed the
    /// caller's decoding even though the frame validated — e.g. a
    /// record written by an older payload schema. Counted as a corrupt
    /// record plus an eviction.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the removal itself fails.
    pub fn invalidate(&self, key: &Digest) -> Result<(), StoreError> {
        self.add(ct_obs::names::STORE_CORRUPT_RECORDS, 1);
        self.remove_file(&self.record_path(key))
    }

    /// Evicts the record for `key`, returning whether it existed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the removal fails for a reason
    /// other than the record being absent.
    pub fn evict(&self, key: &Digest) -> Result<bool, StoreError> {
        let path = self.record_path(key);
        if !path.exists() {
            return Ok(false);
        }
        self.remove_file(&path)?;
        Ok(true)
    }

    fn remove_file(&self, path: &Path) -> Result<(), StoreError> {
        let removed = self.retry_transient(|| {
            if let Some(kind) = self.injected_fault(faults::sites::STORE_EVICT_REMOVE) {
                return Err(kind.io_error());
            }
            fs::remove_file(path)
        });
        match removed {
            Ok(()) => {
                self.add(ct_obs::names::STORE_EVICTIONS, 1);
                Ok(())
            }
            // A concurrent evictor got there first; the record is gone
            // either way.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::io(path, &e)),
        }
    }

    /// Removes `tmp/` staging files at least `max_age` old, returning
    /// how many were swept (counted as `store.tmp_swept`). Only a
    /// crashed writer leaves files here — a live `put` stages for
    /// milliseconds and cleans up after itself on failure — so an age
    /// threshold is all the live-writer protection needed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the staging directory cannot be
    /// listed; individual files that vanish or resist removal mid-sweep
    /// are skipped (another sweeper may be racing us, harmlessly).
    pub fn sweep_tmp(&self, max_age: Duration) -> Result<usize, StoreError> {
        let tmp_dir = self.root.join("tmp");
        let entries = fs::read_dir(&tmp_dir).map_err(|e| StoreError::io(&tmp_dir, &e))?;
        let mut swept = 0;
        for entry in entries.flatten() {
            let old_enough = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                // An unreadable mtime reads as "fresh": never sweep a
                // file we cannot prove is old.
                .is_some_and(|age| age >= max_age);
            if old_enough && fs::remove_file(entry.path()).is_ok() {
                swept += 1;
            }
        }
        if swept > 0 {
            self.add(ct_obs::names::STORE_TMP_SWEPT, swept as u64);
        }
        Ok(swept)
    }

    /// Walks the whole store, validating every record frame, and —
    /// in repair mode — evicts corrupt records and sweeps orphaned
    /// staging files. The read-only mode modifies nothing and is safe
    /// to run against a store in active use.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] for environmental failures (an
    /// unlistable directory, an unreadable record). Corruption is
    /// never an error: it is what the walk exists to count.
    pub fn fsck(&self, options: &FsckOptions) -> Result<FsckReport, StoreError> {
        let mut report = FsckReport::default();
        let objects = self.root.join("objects");
        let shards = fs::read_dir(&objects).map_err(|e| StoreError::io(&objects, &e))?;
        for shard in shards.flatten() {
            let shard_path = shard.path();
            if !shard_path.is_dir() {
                continue;
            }
            let records = fs::read_dir(&shard_path).map_err(|e| StoreError::io(&shard_path, &e))?;
            for record in records.flatten() {
                let path = record.path();
                let bytes = fs::read(&path).map_err(|e| StoreError::io(&path, &e))?;
                report.records_scanned += 1;
                report.bytes_scanned += bytes.len() as u64;
                if decode_record(&bytes).is_ok() {
                    continue;
                }
                report.corrupt_records += 1;
                if options.repair {
                    self.add(ct_obs::names::STORE_CORRUPT_RECORDS, 1);
                    self.remove_file(&path)?;
                    report.repaired += 1;
                }
            }
        }
        let tmp_dir = self.root.join("tmp");
        report.tmp_files = fs::read_dir(&tmp_dir)
            .map_err(|e| StoreError::io(&tmp_dir, &e))?
            .count();
        if options.repair {
            report.tmp_swept = self.sweep_tmp(options.tmp_max_age)?;
        }
        Ok(report)
    }
}

/// What [`Store::fsck`] is allowed to do.
#[derive(Debug, Clone)]
pub struct FsckOptions {
    /// Evict corrupt records and sweep orphaned staging files; `false`
    /// reports only and modifies nothing.
    pub repair: bool,
    /// Minimum age before a `tmp/` staging file counts as orphaned
    /// (see [`Store::sweep_tmp`]).
    pub tmp_max_age: Duration,
}

impl Default for FsckOptions {
    fn default() -> Self {
        Self {
            repair: false,
            tmp_max_age: DEFAULT_TMP_MAX_AGE,
        }
    }
}

/// What an [`Store::fsck`] walk found (and, in repair mode, fixed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Record files whose frame was validated.
    pub records_scanned: usize,
    /// Total record bytes read.
    pub bytes_scanned: u64,
    /// Records that failed frame validation.
    pub corrupt_records: usize,
    /// Corrupt records evicted (repair mode only; always ≤
    /// `corrupt_records`).
    pub repaired: usize,
    /// Staging files present under `tmp/`.
    pub tmp_files: usize,
    /// Staging files swept as orphans (repair mode only).
    pub tmp_swept: usize,
}

impl FsckReport {
    /// Whether the store needs no attention: every record validates
    /// and no staging residue is present.
    pub fn clean(&self) -> bool {
        self.corrupt_records == 0 && self.tmp_files == 0
    }

    /// The machine-readable summary the `ct fsck` subcommand prints:
    /// one `fsck,<field>,<value>` line per field, in declaration
    /// order, so scripts can grep exact values.
    pub fn to_csv(&self) -> String {
        format!(
            "fsck,records_scanned,{}\n\
             fsck,bytes_scanned,{}\n\
             fsck,corrupt_records,{}\n\
             fsck,repaired,{}\n\
             fsck,tmp_files,{}\n\
             fsck,tmp_swept,{}\n",
            self.records_scanned,
            self.bytes_scanned,
            self.corrupt_records,
            self.repaired,
            self.tmp_files,
            self.tmp_swept
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{sites, FaultSpec};
    use crate::hash::StableHasher;

    fn key(label: &str) -> Digest {
        let mut h = StableHasher::new();
        h.write_str(label);
        h.finish()
    }

    /// A unique on-disk root per test, with a local registry so counter
    /// assertions are exact even under the parallel test runner.
    fn scratch(tag: &str) -> (Store, Arc<ct_obs::Registry>, PathBuf) {
        let root = std::env::temp_dir().join(format!("ct-store-unit-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let registry = Arc::new(ct_obs::Registry::new());
        let store = Store::open_with_registry(&root, Arc::clone(&registry)).unwrap();
        (store, registry, root)
    }

    /// Like [`scratch`], with a private armed-fault registry.
    fn faulty_scratch(tag: &str) -> (Store, Arc<ct_obs::Registry>, Arc<FaultRegistry>, PathBuf) {
        let root =
            std::env::temp_dir().join(format!("ct-store-fault-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let registry = Arc::new(ct_obs::Registry::new());
        let faults = Arc::new(FaultRegistry::with_obs(Arc::clone(&registry)));
        let store =
            Store::open_with_faults(&root, Arc::clone(&registry), Arc::clone(&faults)).unwrap();
        (store, registry, faults, root)
    }

    fn counter(registry: &ct_obs::Registry, name: &str) -> u64 {
        registry.snapshot().counter(name).unwrap_or(0)
    }

    #[test]
    fn put_get_round_trip_with_counters() {
        let (store, reg, root) = scratch("round-trip");
        let k = key("a");
        assert_eq!(store.get(&k).unwrap(), None);
        store.put(&k, b"payload").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"payload".to_vec()));
        assert_eq!(counter(&reg, ct_obs::names::STORE_MISSES), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_HITS), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_RECORDS_WRITTEN), 1);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn overwrite_replaces_payload() {
        let (store, _, root) = scratch("overwrite");
        let k = key("a");
        store.put(&k, b"v1").unwrap();
        store.put(&k, b"v2").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"v2".to_vec()));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn corrupt_record_is_counted_evicted_and_reported_as_miss() {
        let (store, reg, root) = scratch("corrupt");
        let k = key("a");
        store.put(&k, b"payload").unwrap();
        let path = store.record_path(&k);

        // Truncate mid-payload, as a crash during a non-atomic writer
        // would have.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        assert_eq!(store.get(&k).unwrap(), None);
        assert_eq!(counter(&reg, ct_obs::names::STORE_CORRUPT_RECORDS), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_EVICTIONS), 1);
        assert!(!path.exists(), "corrupt record must be evicted");

        // Recompute-and-rewrite path: a fresh put fully heals the key.
        store.put(&k, b"payload").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"payload".to_vec()));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn no_temp_residue_after_writes() {
        let (store, _, root) = scratch("tmp-residue");
        for i in 0..10 {
            store.put(&key(&format!("k{i}")), &[i as u8; 64]).unwrap();
        }
        let leftovers: Vec<_> = fs::read_dir(root.join("tmp")).unwrap().collect();
        assert!(leftovers.is_empty(), "tmp/ must be empty: {leftovers:?}");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn evict_and_invalidate() {
        let (store, reg, root) = scratch("evict");
        let k = key("a");
        assert!(!store.evict(&k).unwrap());
        store.put(&k, b"x").unwrap();
        assert!(store.evict(&k).unwrap());
        assert_eq!(store.get(&k).unwrap(), None);

        store.put(&k, b"x").unwrap();
        store.invalidate(&k).unwrap();
        assert_eq!(store.get(&k).unwrap(), None);
        assert_eq!(counter(&reg, ct_obs::names::STORE_CORRUPT_RECORDS), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_EVICTIONS), 2);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn staged_names_embed_pid_and_startup_nonce() {
        // The collision-avoidance contract for multi-process stores:
        // a staged filename must be unique across processes even under
        // PID reuse, so it carries key, PID, startup nonce, and
        // sequence — and never repeats within a process.
        let nonce = startup_nonce();
        assert_eq!(nonce, startup_nonce(), "nonce is per-process stable");
        let (store, _, root) = scratch("tmp-name");
        let k = key("a");
        let a = store.staged_path(&k);
        let b = store.staged_path(&k);
        assert_ne!(a, b, "every staged path is unique");
        let name = a.file_name().unwrap().to_str().unwrap();
        let expected_prefix = format!("{}.{}.{nonce:016x}.", k.to_hex(), std::process::id());
        assert!(
            name.starts_with(&expected_prefix) && name.ends_with(".tmp"),
            "staged name {name:?} must carry key, PID, and nonce"
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn transient_write_fault_is_retried_to_success() {
        let (store, reg, faults, root) = faulty_scratch("retry-write");
        faults.arm(FaultSpec::once(sites::STORE_PUT_WRITE, 1, FaultKind::Io));
        let k = key("a");
        store.put(&k, b"payload").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"payload".to_vec()));
        assert_eq!(counter(&reg, ct_obs::names::STORE_RETRIES), 1);
        assert_eq!(counter(&reg, ct_obs::names::FAULTS_FIRED), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_RECORDS_WRITTEN), 1);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn enospc_is_not_retried_and_leaves_no_tmp_residue() {
        let (store, reg, faults, root) = faulty_scratch("enospc");
        faults.arm(FaultSpec::every(
            sites::STORE_PUT_WRITE,
            1,
            FaultKind::Enospc,
        ));
        let e = store.put(&key("a"), b"payload").unwrap_err();
        assert!(e.to_string().contains("disk-full"), "{e}");
        assert_eq!(counter(&reg, ct_obs::names::STORE_RETRIES), 0);
        let leftovers: Vec<_> = fs::read_dir(root.join("tmp")).unwrap().collect();
        assert!(leftovers.is_empty(), "failed put must clean its tmp file");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn rename_fault_fails_put_and_cleans_tmp() {
        let (store, reg, faults, root) = faulty_scratch("rename");
        faults.arm(FaultSpec::every(
            sites::STORE_PUT_RENAME,
            1,
            FaultKind::Enospc,
        ));
        assert!(store.put(&key("a"), b"payload").is_err());
        assert!(fs::read_dir(root.join("tmp")).unwrap().next().is_none());
        assert_eq!(counter(&reg, ct_obs::names::STORE_RECORDS_WRITTEN), 0);
        // Disarm and the same put heals fully.
        faults.disarm_all();
        store.put(&key("a"), b"payload").unwrap();
        assert_eq!(store.get(&key("a")).unwrap(), Some(b"payload".to_vec()));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn dir_fsync_failpoint_fails_put_after_publish() {
        let (store, reg, faults, root) = faulty_scratch("sync-dir");
        faults.arm(FaultSpec::every(
            sites::STORE_PUT_SYNC_DIR,
            1,
            FaultKind::Enospc,
        ));
        let k = key("a");
        assert!(store.put(&k, b"payload").is_err());
        // The rename landed before the dir fsync failed: the record is
        // visible and valid (just not provably durable yet), so the
        // conservative error is honest, not destructive.
        faults.disarm_all();
        assert_eq!(store.get(&k).unwrap(), Some(b"payload".to_vec()));
        assert_eq!(counter(&reg, ct_obs::names::FAULTS_FIRED), 1);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn torn_write_fault_fails_put_without_publishing() {
        let (store, _, faults, root) = faulty_scratch("torn");
        faults.arm(FaultSpec::every(
            sites::STORE_PUT_WRITE,
            1,
            FaultKind::PartialWrite,
        ));
        let k = key("a");
        assert!(store.put(&k, b"payload").is_err());
        assert_eq!(
            fs::read_dir(root.join("objects").join(&k.to_hex()[..2]))
                .map(|d| d.count())
                .unwrap_or(0),
            0,
            "a torn stage must never publish a record"
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn corruption_fault_on_write_is_healed_on_read() {
        let (store, reg, faults, root) = faulty_scratch("corrupt-write");
        faults.arm(FaultSpec::once(
            sites::STORE_PUT_WRITE,
            1,
            FaultKind::Corruption,
        ));
        let k = key("a");
        store.put(&k, b"payload").unwrap(); // "succeeds", frame mangled
        assert_eq!(store.get(&k).unwrap(), None, "checksum must catch it");
        assert_eq!(counter(&reg, ct_obs::names::STORE_CORRUPT_RECORDS), 1);
        store.put(&k, b"payload").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"payload".to_vec()));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn read_fault_surfaces_after_retry_budget() {
        let (store, reg, faults, root) = faulty_scratch("read-io");
        store.put(&key("a"), b"payload").unwrap();
        faults.arm(FaultSpec::every(sites::STORE_GET_READ, 1, FaultKind::Io));
        assert!(store.get(&key("a")).is_err(), "budget exhausted → error");
        // Default budget is 2 extra attempts → 2 retries counted.
        assert_eq!(counter(&reg, ct_obs::names::STORE_RETRIES), 2);
        assert_eq!(counter(&reg, ct_obs::names::FAULTS_FIRED), 3);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn sweep_tmp_honors_age_threshold() {
        let (store, reg, root) = scratch("sweep");
        let orphan = root.join("tmp").join("deadbeef.999.0123456789abcdef.0.tmp");
        fs::write(&orphan, b"staged then crashed").unwrap();
        // Fresh files are live-writer territory: an hour-long minimum
        // age must spare them.
        assert_eq!(store.sweep_tmp(DEFAULT_TMP_MAX_AGE).unwrap(), 0);
        assert!(orphan.exists());
        // Age zero treats everything as orphaned.
        assert_eq!(store.sweep_tmp(Duration::ZERO).unwrap(), 1);
        assert!(!orphan.exists());
        assert_eq!(counter(&reg, ct_obs::names::STORE_TMP_SWEPT), 1);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn fsck_reports_then_repairs_corruption_and_orphans() {
        let (store, reg, root) = scratch("fsck");
        for i in 0..4 {
            store.put(&key(&format!("k{i}")), &[i as u8; 32]).unwrap();
        }
        // Damage two records (truncation + bit flip) and orphan a
        // staging file, as two crashed writers would have.
        let p0 = store.record_path(&key("k0"));
        let bytes = fs::read(&p0).unwrap();
        fs::write(&p0, &bytes[..10]).unwrap();
        let p1 = store.record_path(&key("k1"));
        let mut bytes = fs::read(&p1).unwrap();
        *bytes.last_mut().unwrap() ^= 0xff;
        fs::write(&p1, bytes).unwrap();
        fs::write(root.join("tmp").join("orphan.1.2.3.tmp"), b"x").unwrap();

        // Read-only pass: counts everything, repairs nothing.
        let report = store.fsck(&FsckOptions::default()).unwrap();
        assert_eq!(report.records_scanned, 4);
        assert_eq!(report.corrupt_records, 2);
        assert_eq!(report.repaired, 0);
        assert_eq!(report.tmp_files, 1);
        assert_eq!(report.tmp_swept, 0);
        assert!(!report.clean());
        assert!(p0.exists(), "read-only fsck must not modify the store");

        // Repair pass: evicts both corrupt records, sweeps the orphan.
        let report = store
            .fsck(&FsckOptions {
                repair: true,
                tmp_max_age: Duration::ZERO,
            })
            .unwrap();
        assert_eq!(report.corrupt_records, 2);
        assert_eq!(report.repaired, 2);
        assert_eq!(report.tmp_swept, 1);
        assert!(!p0.exists() && !p1.exists());
        assert_eq!(counter(&reg, ct_obs::names::STORE_CORRUPT_RECORDS), 2);
        assert_eq!(counter(&reg, ct_obs::names::STORE_EVICTIONS), 2);
        assert_eq!(counter(&reg, ct_obs::names::STORE_TMP_SWEPT), 1);

        // A third pass reports a clean store, and the summary format
        // scripts grep is pinned.
        let report = store.fsck(&FsckOptions::default()).unwrap();
        assert!(report.clean());
        assert_eq!(report.records_scanned, 2);
        assert!(report.to_csv().contains("fsck,corrupt_records,0\n"));
        assert!(report.to_csv().starts_with("fsck,records_scanned,2\n"));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn open_sweeps_only_provably_old_orphans() {
        let root =
            std::env::temp_dir().join(format!("ct-store-unit-{}-open-sweep", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("tmp")).unwrap();
        let fresh = root.join("tmp").join("fresh.1.2.3.tmp");
        fs::write(&fresh, b"live writer staging").unwrap();
        let _ = Store::open(&root).unwrap();
        assert!(
            fresh.exists(),
            "open-time sweep must never race a live writer's fresh file"
        );
        let _ = fs::remove_dir_all(root);
    }
}
