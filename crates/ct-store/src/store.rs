//! The on-disk store: content-addressed records under a root
//! directory, in one of two layouts.
//!
//! **Loose** (the default):
//!
//! ```text
//! <root>/objects/<hh>/<hex32>.rec   records, sharded by first hex byte
//! <root>/tmp/                       staging area for atomic writes
//! ```
//!
//! Loose writes are crash-safe: the frame is written to a unique file
//! under `tmp/` and then `rename`d into place (followed by an fsync
//! of the shard directory, so the rename itself survives power loss),
//! so a reader never observes a half-written record at its final
//! path. A crash can only leave a stale temp file, which is invisible
//! to lookups and swept by [`Store::open`]/[`Store::fsck`] once it is
//! old enough to be provably orphaned. Reads validate the record
//! frame and *evict* anything corrupt, reporting a miss — so a torn
//! record from a `kill -9` degrades to recompute-and-rewrite.
//!
//! **Packed** ([`Store::open_packed`], `ct run --packed`,
//! auto-detected on open):
//!
//! ```text
//! <root>/segments/seg-<nnnn>.ctseg  append-only entry logs
//! <root>/tmp/                       staging area for compactions
//! ```
//!
//! Records append to the active segment with one *group* fsync per
//! `CT_SEGMENT_SYNC_BYTES` of data and are served by positioned reads
//! off an in-memory key → (segment, offset, len) index, trading the
//! loose layout's two-fsyncs-per-put for sequential-write throughput.
//! The same validate-or-evict read contract holds (eviction appends a
//! tombstone). See [`crate::segment`] for the format and recovery
//! rules, and [`Store::fsck`] for segment validation, compaction, and
//! repair.
//!
//! Transient I/O errors (`Interrupted`/`TimedOut`/`WouldBlock`) are
//! absorbed by deadline-budgeted retry-with-backoff
//! (`CT_STORE_RETRY_BUDGET_MS` of planned sleep per operation,
//! default 3 ms; retries counted as `store.retries`, backoff sleeps
//! observed on the `store.retry_wait_ms` histogram); everything else
//! surfaces as [`StoreError::Io`] for callers to degrade on. Every
//! fragile operation passes a named failpoint ([`crate::faults`]) so
//! the crash paths are testable deterministically.
//!
//! Every operation reports to [`ct_obs`] counters (`store.hits`,
//! `store.misses`, `store.records_written`, `store.corrupt_records`,
//! `store.evictions`, `store.retries`, `store.degraded`,
//! `store.tmp_swept`, and the packed layout's `store.segment.*`).
//! Methods deliberately open no [`ct_obs`] spans: they are called
//! from worker threads, and spans are reserved for coordinator code
//! so the span tree stays thread-count invariant.

use crate::error::StoreError;
use crate::faults::{self, FaultKind, FaultRegistry};
use crate::format::{decode_record, encode_record};
use crate::hash::Digest;
use crate::metrics::MetricsSink;
use crate::retry;
use crate::segment::{
    self, ActiveSegment, EntryMeta, IndexEntry, OpenStats, PackedBackend, PackedOptions,
    PackedState,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs;
use std::io::Write as _;
use std::os::unix::fs::FileExt as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Which fault registry a store's failpoints consult.
#[derive(Debug, Clone)]
enum FaultsHandle {
    /// The process-global registry, armed from `CT_FAULTS`.
    Global,
    /// A caller-owned registry — used by tests that arm faults without
    /// racing other tests on the global registry.
    Local(Arc<FaultRegistry>),
}

/// Which on-disk layout a constructor asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LayoutChoice {
    /// Whatever the root already holds (`segments/` → packed,
    /// otherwise loose), creating a loose store on a fresh root.
    Auto,
    /// The packed segment layout, creating it on a fresh root.
    Packed,
}

/// A handle to a content-addressed artifact store rooted at a
/// directory. Cheap to clone; clones of one handle share the packed
/// backend, everything else lives on disk.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    sink: MetricsSink,
    faults: FaultsHandle,
    /// `Some` when this store uses the packed segment layout.
    packed: Option<Arc<PackedBackend>>,
}

/// Distinguishes this process's concurrent writers staging into the
/// same `tmp/`.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Tmp files older than this are treated as orphans of a crashed
/// writer by the open-time sweep: no healthy `put` stages a file for
/// anywhere near this long, so sweeping cannot race a live writer.
pub const DEFAULT_TMP_MAX_AGE: Duration = Duration::from_secs(3600);

/// A per-process random nonce baked into staged filenames, so two
/// processes sharing a store (the sharded-run case) cannot collide in
/// `tmp/` even if the OS recycles a crashed writer's PID.
fn startup_nonce() -> u64 {
    static NONCE: OnceLock<u64> = OnceLock::new();
    *NONCE.get_or_init(|| {
        // No `rand` dependency by policy; mix whatever per-process
        // entropy std exposes — boot-relative time, PID, and ASLR —
        // through the store's own hash.
        let mut seed = Vec::new();
        let now = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .unwrap_or_default();
        seed.extend_from_slice(&now.as_nanos().to_le_bytes());
        seed.extend_from_slice(&std::process::id().to_le_bytes());
        seed.extend_from_slice(&(startup_nonce as fn() -> u64 as usize as u64).to_le_bytes());
        crate::hash::checksum64(&seed)
    })
}

/// Opens `dir` and fsyncs it, making a just-renamed directory entry
/// durable. The sole dir-fsync helper — `put` goes through here, and
/// the `store.put.sync_dir` failpoint tests its failure path.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`, reporting
    /// metrics to the global [`ct_obs`] registry and consulting the
    /// global fault registry. Stale `tmp/` orphans (older than
    /// [`DEFAULT_TMP_MAX_AGE`]) are swept as a side effect,
    /// best-effort.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory tree cannot be
    /// created.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_inner(
            root.as_ref(),
            MetricsSink::Global,
            FaultsHandle::Global,
            LayoutChoice::Auto,
            None,
        )
    }

    /// Opens (creating if needed) a store using the **packed** segment
    /// layout: records append to `segments/seg-<nnnn>.ctseg` logs and
    /// are served from an in-memory index. Size thresholds come from
    /// `CT_SEGMENT_ROLL_BYTES` / `CT_SEGMENT_SYNC_BYTES` (see
    /// [`PackedOptions::from_env`]).
    ///
    /// The packed layout assumes a single writing process; sharded
    /// runs write sequentially (each invocation reopens and rescans).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory tree cannot be
    /// created, when the root already holds a loose store
    /// (`objects/`), or when a segment cannot be scanned.
    pub fn open_packed(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_inner(
            root.as_ref(),
            MetricsSink::Global,
            FaultsHandle::Global,
            LayoutChoice::Packed,
            None,
        )
    }

    /// Like [`Store::open`], but reporting to a caller-owned registry.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory tree cannot be
    /// created.
    pub fn open_with_registry(
        root: impl AsRef<Path>,
        registry: Arc<ct_obs::Registry>,
    ) -> Result<Self, StoreError> {
        Self::open_inner(
            root.as_ref(),
            MetricsSink::Local(registry),
            FaultsHandle::Global,
            LayoutChoice::Auto,
            None,
        )
    }

    /// Like [`Store::open_with_registry`], but also consulting a
    /// caller-owned fault registry — the test-facing constructor for
    /// deterministic fault injection with exact counter assertions.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory tree cannot be
    /// created.
    pub fn open_with_faults(
        root: impl AsRef<Path>,
        registry: Arc<ct_obs::Registry>,
        faults: Arc<FaultRegistry>,
    ) -> Result<Self, StoreError> {
        Self::open_inner(
            root.as_ref(),
            MetricsSink::Local(registry),
            FaultsHandle::Local(faults),
            LayoutChoice::Auto,
            None,
        )
    }

    /// Like [`Store::open_packed`], with caller-owned metrics and
    /// fault registries plus explicit size thresholds — the
    /// test-facing constructor for forcing segment rolls and group
    /// syncs at tiny sizes.
    ///
    /// # Errors
    ///
    /// As [`Store::open_packed`].
    pub fn open_packed_with_options(
        root: impl AsRef<Path>,
        registry: Arc<ct_obs::Registry>,
        faults: Arc<FaultRegistry>,
        options: PackedOptions,
    ) -> Result<Self, StoreError> {
        Self::open_inner(
            root.as_ref(),
            MetricsSink::Local(registry),
            FaultsHandle::Local(faults),
            LayoutChoice::Packed,
            Some(options),
        )
    }

    fn open_inner(
        root: &Path,
        sink: MetricsSink,
        faults: FaultsHandle,
        layout: LayoutChoice,
        options: Option<PackedOptions>,
    ) -> Result<Self, StoreError> {
        let segments = root.join("segments");
        let objects = root.join("objects");
        // Layout resolution: an existing layout always wins Auto, and
        // asking for packed on a loose root is a caller error — the
        // two layouts never mix under one root.
        let packed = match layout {
            LayoutChoice::Packed => {
                if objects.is_dir() {
                    let e = std::io::Error::other(
                        "root already holds a loose store; open it without --packed \
                         or pick a fresh root for the packed store",
                    );
                    return Err(StoreError::io(&objects, &e));
                }
                true
            }
            LayoutChoice::Auto => segments.is_dir(),
        };
        let data_dir = if packed { &segments } else { &objects };
        for dir in [data_dir, &root.join("tmp")] {
            fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, &e))?;
        }
        let mut store = Self {
            root: root.to_path_buf(),
            sink,
            faults,
            packed: None,
        };
        if packed {
            let (state, stats) = store.packed_scan_state(&segments)?;
            store.add(
                ct_obs::names::STORE_SEGMENT_FOOTER_LOADS,
                stats.footer_loads as u64,
            );
            store.add(ct_obs::names::STORE_SEGMENT_SCANS, stats.scans as u64);
            store.add(
                ct_obs::names::STORE_SEGMENT_TRUNCATED_TAILS,
                stats.truncated_tails as u64,
            );
            store.packed = Some(Arc::new(PackedBackend {
                dir: segments,
                options: options.unwrap_or_else(PackedOptions::from_env),
                state: Mutex::new(state),
            }));
        }
        // Crashed writers leave staging files behind forever otherwise;
        // the age threshold keeps us clear of any live writer. Sweep
        // failures must not fail `open` — the store works regardless.
        let _ = store.sweep_tmp(DEFAULT_TMP_MAX_AGE);
        Ok(store)
    }

    /// Whether this store uses the packed segment layout.
    pub fn is_packed(&self) -> bool {
        self.packed.is_some()
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path a record for `key` lives at in the **loose**
    /// layout (whether or not it exists yet). Exposed for tests and
    /// tooling that inspect or damage records deliberately; packed
    /// stores keep no per-record files — damage those through their
    /// `segments/seg-<nnnn>.ctseg` files instead.
    pub fn record_path(&self, key: &Digest) -> PathBuf {
        let hex = key.to_hex();
        self.root
            .join("objects")
            .join(&hex[0..2])
            .join(format!("{hex}.rec"))
    }

    fn add(&self, name: &str, delta: u64) {
        self.sink.add(name, delta);
    }

    fn observe_bytes(&self, len: usize) {
        self.sink.observe(
            ct_obs::names::STORE_RECORD_BYTES,
            &ct_obs::names::STORE_RECORD_BYTES_BOUNDS,
            len as f64,
        );
    }

    /// Consults this store's fault registry for `site`. Public so the
    /// layers above the store (`ct-hydro`'s cache, the core pipeline)
    /// can place their own failpoints on the same registry a test (or
    /// `CT_FAULTS`) armed.
    pub fn injected_fault(&self, site: &str) -> Option<FaultKind> {
        match &self.faults {
            FaultsHandle::Global => faults::global().hit(site),
            FaultsHandle::Local(r) => r.hit(site),
        }
    }

    /// Records that a caller absorbed a store failure by degrading to
    /// compute-without-cache (counted as `store.degraded`). The store
    /// cannot see the degradation itself — it happens in the caller's
    /// recovery path — so callers report it here, onto the same
    /// metrics sink as the store's own counters.
    pub fn note_degraded(&self) {
        self.add(ct_obs::names::STORE_DEGRADED, 1);
    }

    /// Runs `op`, retrying transient I/O errors with exponential
    /// backoff while the next planned sleep still fits the
    /// per-operation deadline budget (`CT_STORE_RETRY_BUDGET_MS`; see
    /// [`crate::retry`]). Non-transient errors and exhausted budgets
    /// surface unchanged; each backoff sleep is observed on the
    /// `store.retry_wait_ms` histogram so retry latency (p50/p99) is
    /// visible in `--metrics` snapshots.
    fn retry_transient<T>(&self, op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
        retry::retry(
            retry::is_transient,
            |wait_ms| {
                self.add(ct_obs::names::STORE_RETRIES, 1);
                self.sink.observe(
                    ct_obs::names::STORE_RETRY_WAIT_MS,
                    &ct_obs::names::STORE_RETRY_WAIT_MS_BOUNDS,
                    wait_ms as f64,
                );
            },
            op,
        )
    }

    /// Fetches the payload stored under `key`.
    ///
    /// Returns `Ok(None)` on a miss *and* on a corrupt record: a
    /// record that fails frame validation (truncated, bad magic, wrong
    /// version, checksum mismatch) is counted as `store.corrupt_records`,
    /// evicted from disk, and reported as a miss, so the caller's
    /// recompute-and-rewrite path handles both cases identically.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] only for environmental failures
    /// (e.g. permission errors) that survive the transient-retry
    /// budget — never for corrupt content.
    pub fn get(&self, key: &Digest) -> Result<Option<Vec<u8>>, StoreError> {
        if self.packed.is_some() {
            return self.packed_get(key);
        }
        let path = self.record_path(key);
        let read = self.retry_transient(|| {
            let fault = self.injected_fault(faults::sites::STORE_GET_READ);
            if let Some(kind @ (FaultKind::Io | FaultKind::Enospc)) = fault {
                return Err(kind.io_error());
            }
            let mut bytes = fs::read(&path)?;
            match fault {
                // A read that tears or bit-rots in flight: the frame
                // checksum below must catch both.
                Some(FaultKind::Corruption) => {
                    if let Some(b) = bytes.last_mut() {
                        *b ^= 0x01;
                    }
                }
                Some(FaultKind::PartialWrite) => bytes.truncate(bytes.len() / 2),
                _ => {}
            }
            Ok(bytes)
        });
        let bytes = match read {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.add(ct_obs::names::STORE_MISSES, 1);
                return Ok(None);
            }
            Err(e) => return Err(StoreError::io(&path, &e)),
        };
        match decode_record(&bytes) {
            Ok(payload) => {
                self.add(ct_obs::names::STORE_HITS, 1);
                Ok(Some(payload.to_vec()))
            }
            Err(_corruption) => {
                self.add(ct_obs::names::STORE_CORRUPT_RECORDS, 1);
                self.remove_file(&path)?;
                Ok(None)
            }
        }
    }

    /// Writes the framed bytes to the staged temp file and flushes
    /// them to stable storage. The `store.put.write` failpoint sits
    /// here: `io`/`enospc` fail the write, `corrupt` silently mangles
    /// the frame (the write "succeeds"; the checksum catches it on
    /// read), `torn` persists half the frame and then errors, like a
    /// crash mid-write.
    fn stage(&self, tmp: &Path, frame: &[u8]) -> std::io::Result<()> {
        let mut f = fs::File::create(tmp)?;
        match self.injected_fault(faults::sites::STORE_PUT_WRITE) {
            Some(kind @ (FaultKind::Io | FaultKind::Enospc)) => return Err(kind.io_error()),
            Some(FaultKind::PartialWrite) => {
                f.write_all(&frame[..frame.len() / 2])?;
                f.sync_all()?;
                return Err(FaultKind::PartialWrite.io_error());
            }
            Some(FaultKind::Corruption) => {
                let mut mangled = frame.to_vec();
                if let Some(b) = mangled.last_mut() {
                    *b ^= 0x01;
                }
                f.write_all(&mangled)?;
            }
            None => f.write_all(frame)?,
        }
        // Flush to stable storage before the rename publishes the
        // record, so a crash cannot expose an empty committed file.
        f.sync_all()
    }

    /// A fresh, never-reused staging path for a `put` of `key`. The
    /// name carries the key (debuggability), PID plus a per-process
    /// startup nonce (uniqueness across the processes of a sharded
    /// run, even under PID reuse), and a process-local sequence
    /// (uniqueness across this process's concurrent writers).
    fn staged_path(&self, key: &Digest) -> PathBuf {
        self.root.join("tmp").join(format!(
            "{}.{}.{:016x}.{}.tmp",
            key.to_hex(),
            std::process::id(),
            startup_nonce(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// Atomically writes `payload` as the record for `key`,
    /// overwriting any existing record. Durable on return: the staged
    /// file is fsynced before the rename, and the shard directory is
    /// fsynced after it, so a power cut cannot un-commit the record.
    /// On failure the staged temp file is removed (best-effort), so an
    /// *erroring* put leaves no residue — only a crashed process can
    /// orphan a temp file, and the open-time sweep collects those.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when staging, renaming, or the
    /// directory fsync fails past the transient-retry budget.
    pub fn put(&self, key: &Digest, payload: &[u8]) -> Result<(), StoreError> {
        if self.packed.is_some() {
            return self.packed_put(key, payload);
        }
        let path = self.record_path(key);
        let dir = path.parent().expect("record path has a parent");
        fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, &e))?;

        let tmp = self.staged_path(key);
        let frame = encode_record(payload);
        let staged = self
            .retry_transient(|| self.stage(&tmp, &frame))
            .and_then(|()| {
                self.retry_transient(|| {
                    if let Some(kind) = self.injected_fault(faults::sites::STORE_PUT_RENAME) {
                        return Err(kind.io_error());
                    }
                    fs::rename(&tmp, &path)
                })
            });
        if let Err(e) = staged {
            // Tmp hygiene: never leave our own staging residue behind.
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::io(&path, &e));
        }
        if let Err(e) = self.retry_transient(|| {
            if let Some(kind) = self.injected_fault(faults::sites::STORE_PUT_SYNC_DIR) {
                return Err(kind.io_error());
            }
            fsync_dir(dir)
        }) {
            // The rename already landed; the record is visible but its
            // directory entry is not yet provably durable.
            return Err(StoreError::io(dir, &e));
        }
        self.add(ct_obs::names::STORE_RECORDS_WRITTEN, 1);
        self.observe_bytes(frame.len());
        Ok(())
    }

    /// Removes the record for `key` because its *payload* failed the
    /// caller's decoding even though the frame validated — e.g. a
    /// record written by an older payload schema. Counted as a corrupt
    /// record plus an eviction.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the removal itself fails.
    pub fn invalidate(&self, key: &Digest) -> Result<(), StoreError> {
        self.add(ct_obs::names::STORE_CORRUPT_RECORDS, 1);
        if self.packed.is_some() {
            self.packed_tombstone(key)?;
            return Ok(());
        }
        self.remove_file(&self.record_path(key))
    }

    /// Evicts the record for `key`, returning whether it existed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the removal fails for a reason
    /// other than the record being absent.
    pub fn evict(&self, key: &Digest) -> Result<bool, StoreError> {
        if self.packed.is_some() {
            return self.packed_tombstone(key);
        }
        let path = self.record_path(key);
        if !path.exists() {
            return Ok(false);
        }
        self.remove_file(&path)?;
        Ok(true)
    }

    fn remove_file(&self, path: &Path) -> Result<(), StoreError> {
        let removed = self.retry_transient(|| {
            if let Some(kind) = self.injected_fault(faults::sites::STORE_EVICT_REMOVE) {
                return Err(kind.io_error());
            }
            fs::remove_file(path)
        });
        match removed {
            Ok(()) => {
                self.add(ct_obs::names::STORE_EVICTIONS, 1);
                Ok(())
            }
            // A concurrent evictor got there first; the record is gone
            // either way.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::io(path, &e)),
        }
    }

    /// Removes `tmp/` staging files at least `max_age` old, returning
    /// how many were swept (counted as `store.tmp_swept`). Only a
    /// crashed writer leaves files here — a live `put` stages for
    /// milliseconds and cleans up after itself on failure — so an age
    /// threshold is all the live-writer protection needed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the staging directory cannot be
    /// listed; individual files that vanish or resist removal mid-sweep
    /// are skipped (another sweeper may be racing us, harmlessly).
    pub fn sweep_tmp(&self, max_age: Duration) -> Result<usize, StoreError> {
        let tmp_dir = self.root.join("tmp");
        let entries = fs::read_dir(&tmp_dir).map_err(|e| StoreError::io(&tmp_dir, &e))?;
        let mut swept = 0;
        for entry in entries.flatten() {
            let old_enough = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                // An unreadable mtime reads as "fresh": never sweep a
                // file we cannot prove is old.
                .is_some_and(|age| age >= max_age);
            if old_enough && fs::remove_file(entry.path()).is_ok() {
                swept += 1;
            }
        }
        if swept > 0 {
            self.add(ct_obs::names::STORE_TMP_SWEPT, swept as u64);
        }
        Ok(swept)
    }

    /// Walks the whole store, validating every record frame, and —
    /// in repair mode — evicts corrupt records and sweeps orphaned
    /// staging files. The read-only mode modifies nothing and is safe
    /// to run against a store in active use; the *destructive* modes
    /// (`--repair` eviction/compaction, `--prune`) assume exclusive
    /// access and refuse when a live `ct serve` daemon holds the
    /// store's serving lock ([`crate::lock::ServeLock`]).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] for environmental failures (an
    /// unlistable directory, an unreadable record), and for a
    /// destructive fsck of a store that is currently being served.
    /// Corruption is never an error: it is what the walk exists to
    /// count.
    pub fn fsck(&self, options: &FsckOptions) -> Result<FsckReport, StoreError> {
        if options.repair || options.prune_max_age.is_some() {
            if let Some(pid) = crate::lock::served_by(&self.root) {
                let e = std::io::Error::other(format!(
                    "store is being served by pid {pid}: fsck --repair/--prune \
                     would compact or delete records under a live server; \
                     stop `ct serve` first (read-only fsck is always safe)"
                ));
                return Err(StoreError::io(
                    &self.root.join(crate::lock::SERVE_LOCK_FILE),
                    &e,
                ));
            }
        }
        let mut report = if self.packed.is_some() {
            self.packed_fsck(options)?
        } else {
            self.loose_fsck(options)?
        };
        let tmp_dir = self.root.join("tmp");
        report.tmp_files = fs::read_dir(&tmp_dir)
            .map_err(|e| StoreError::io(&tmp_dir, &e))?
            .count();
        if options.repair {
            report.tmp_swept = self.sweep_tmp(options.tmp_max_age)?;
        }
        Ok(report)
    }

    /// The record walk of [`Store::fsck`] for the loose layout.
    fn loose_fsck(&self, options: &FsckOptions) -> Result<FsckReport, StoreError> {
        let mut report = FsckReport::default();
        let objects = self.root.join("objects");
        let shards = fs::read_dir(&objects).map_err(|e| StoreError::io(&objects, &e))?;
        for shard in shards.flatten() {
            let shard_path = shard.path();
            if !shard_path.is_dir() {
                continue;
            }
            let records = fs::read_dir(&shard_path).map_err(|e| StoreError::io(&shard_path, &e))?;
            for record in records.flatten() {
                let path = record.path();
                let bytes = fs::read(&path).map_err(|e| StoreError::io(&path, &e))?;
                report.records_scanned += 1;
                report.bytes_scanned += bytes.len() as u64;
                if decode_record(&bytes).is_ok() {
                    // A valid record can still be *stale*: age-based
                    // pruning removes records not rewritten within the
                    // caller's bound, keeping long-lived stores bounded.
                    let stale = options.prune_max_age.is_some_and(|age| {
                        record
                            .metadata()
                            .and_then(|m| m.modified())
                            .ok()
                            .and_then(|t| t.elapsed().ok())
                            .is_some_and(|a| a >= age)
                    });
                    if stale {
                        self.remove_file(&path)?;
                        report.pruned += 1;
                    }
                    continue;
                }
                report.corrupt_records += 1;
                if options.repair {
                    self.add(ct_obs::names::STORE_CORRUPT_RECORDS, 1);
                    self.remove_file(&path)?;
                    report.repaired += 1;
                }
            }
        }
        Ok(report)
    }
}

/// The packed-layout implementation. Same public contract as the
/// loose paths ([`Store::get`]/[`Store::put`]/… dispatch here when
/// the backend is packed); see [`crate::segment`] for the on-disk
/// format and recovery rules.
impl Store {
    /// Rebuilds the in-memory index by walking `dir`'s segments in id
    /// order: sealed segments load their footer (O(1) entries read
    /// per record, no payload I/O), unsealed ones are frame-scanned,
    /// and a torn tail is truncated back to the last clean entry
    /// boundary. The last unsealed segment becomes the append target;
    /// a fresh one is created when every segment is sealed.
    fn packed_scan_state(&self, dir: &Path) -> Result<(PackedState, OpenStats), StoreError> {
        let mut stats = OpenStats::default();
        let mut ids: Vec<u32> = Vec::new();
        let listing = fs::read_dir(dir).map_err(|e| StoreError::io(dir, &e))?;
        for entry in listing.flatten() {
            if let Some(id) = entry
                .file_name()
                .to_str()
                .and_then(segment::parse_segment_id)
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        let mut index = HashMap::new();
        let mut files = BTreeMap::new();
        let mut active: Option<ActiveSegment> = None;
        for (i, &id) in ids.iter().enumerate() {
            let path = segment::segment_path(dir, id);
            let bytes = fs::read(&path).map_err(|e| StoreError::io(&path, &e))?;
            let file = fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .map_err(|e| StoreError::io(&path, &e))?;
            if let Some(footer) = segment::decode_footer(&bytes) {
                stats.footer_loads += 1;
                for e in &footer.entries {
                    segment::apply_entry(&mut index, id, e);
                }
            } else {
                stats.scans += 1;
                let scan = segment::scan_entries(&bytes, bytes.len() as u64);
                if scan.truncated {
                    stats.truncated_tails += 1;
                    file.set_len(scan.clean_len)
                        .map_err(|e| StoreError::io(&path, &e))?;
                }
                for e in &scan.entries {
                    segment::apply_entry(&mut index, id, e);
                }
                if i == ids.len() - 1 {
                    active = Some(ActiveSegment {
                        id,
                        len: scan.clean_len,
                        unsynced: 0,
                        pending: scan.entries,
                    });
                }
            }
            files.insert(id, Arc::new(file));
        }
        let active = match active {
            Some(a) => a,
            None => {
                let id = ids.last().map_or(0, |last| last + 1);
                let path = segment::segment_path(dir, id);
                let file = fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(false)
                    .open(&path)
                    .map_err(|e| StoreError::io(&path, &e))?;
                files.insert(id, Arc::new(file));
                ActiveSegment {
                    id,
                    len: 0,
                    unsynced: 0,
                    pending: Vec::new(),
                }
            }
        };
        Ok((
            PackedState {
                index,
                files,
                active,
            },
            stats,
        ))
    }

    fn backend(&self) -> Arc<PackedBackend> {
        Arc::clone(self.packed.as_ref().expect("packed backend present"))
    }

    /// Appends one entry to the active segment and indexes it, then
    /// group-syncs and seals when the byte thresholds say so. Caller
    /// holds the state lock. The `segment.append` failpoint sits at
    /// the top: `io`/`enospc` fail before any byte lands, `torn`
    /// writes half the entry past the logical end (where the next
    /// append overwrites it — exactly a crash mid-append), `corrupt`
    /// mangles a byte and "succeeds" for the frame checksum to catch
    /// on read.
    fn packed_append_locked(
        &self,
        backend: &PackedBackend,
        state: &mut PackedState,
        key: &Digest,
        kind: u8,
        frame: &[u8],
    ) -> std::io::Result<()> {
        let ts = segment::now_unix_secs();
        let mut entry = segment::encode_entry(key, kind, ts, frame);
        let file = Arc::clone(state.files.get(&state.active.id).expect("active file"));
        match self.injected_fault(faults::sites::SEGMENT_APPEND) {
            Some(k @ (FaultKind::Io | FaultKind::Enospc)) => return Err(k.io_error()),
            Some(FaultKind::PartialWrite) => {
                file.write_all_at(&entry[..entry.len() / 2], state.active.len)?;
                return Err(FaultKind::PartialWrite.io_error());
            }
            Some(FaultKind::Corruption) => {
                if let Some(b) = entry.last_mut() {
                    *b ^= 0x01;
                }
            }
            None => {}
        }
        let offset = state.active.len;
        file.write_all_at(&entry, offset)?;
        let meta = EntryMeta {
            key: *key,
            kind,
            ts,
            offset,
            len: entry.len() as u64,
        };
        segment::apply_entry(&mut state.index, state.active.id, &meta);
        state.active.pending.push(meta);
        state.active.len += entry.len() as u64;
        state.active.unsynced += entry.len() as u64;
        self.add(ct_obs::names::STORE_SEGMENT_APPENDS, 1);
        if state.active.unsynced >= backend.options.sync_bytes {
            self.packed_group_sync_locked(state)?;
        }
        if state.active.len >= backend.options.roll_bytes {
            self.packed_seal_locked(backend, state)?;
        }
        Ok(())
    }

    /// The group fsync: one `fdatasync` covering every append since
    /// the last one. A failure errors the put that tripped the
    /// threshold (the entry stays indexed and readable — mirroring
    /// the loose layout's dir-fsync semantics, where the record is
    /// visible but not yet provably durable); `unsynced` is reset
    /// only on success so the next put retries the sync.
    fn packed_group_sync_locked(&self, state: &mut PackedState) -> std::io::Result<()> {
        if let Some(k) = self.injected_fault(faults::sites::SEGMENT_SYNC) {
            return Err(k.io_error());
        }
        state
            .files
            .get(&state.active.id)
            .expect("active file")
            .sync_data()?;
        state.active.unsynced = 0;
        self.add(ct_obs::names::STORE_SEGMENT_GROUP_SYNCS, 1);
        Ok(())
    }

    /// Seals the active segment — truncate torn garbage, append the
    /// footer, fsync file and directory — and rolls to a fresh one.
    /// On failure the segment stays active and over-threshold, so the
    /// next put retries the seal.
    fn packed_seal_locked(
        &self,
        backend: &PackedBackend,
        state: &mut PackedState,
    ) -> std::io::Result<()> {
        if let Some(k) = self.injected_fault(faults::sites::SEGMENT_FOOTER) {
            return Err(k.io_error());
        }
        let file = Arc::clone(state.files.get(&state.active.id).expect("active file"));
        // Drop any torn bytes past the logical end first, so the
        // footer trailer becomes the physical end of the file.
        file.set_len(state.active.len)?;
        let footer = segment::encode_footer(&state.active.pending);
        file.write_all_at(&footer, state.active.len)?;
        file.sync_data()?;
        fsync_dir(&backend.dir)?;
        state.active.unsynced = 0;
        self.add(ct_obs::names::STORE_SEGMENT_SEALS, 1);
        let id = state.active.id + 1;
        let path = segment::segment_path(&backend.dir, id);
        let fresh = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        files_insert_fresh(state, id, fresh);
        Ok(())
    }

    fn packed_put(&self, key: &Digest, payload: &[u8]) -> Result<(), StoreError> {
        let backend = self.backend();
        let frame = encode_record(payload);
        let written = self.retry_transient(|| {
            let mut state = backend.state.lock().expect("packed store lock");
            self.packed_append_locked(&backend, &mut state, key, segment::KIND_PUT, &frame)
        });
        if let Err(e) = written {
            return Err(StoreError::io(&backend.dir, &e));
        }
        self.add(ct_obs::names::STORE_RECORDS_WRITTEN, 1);
        self.observe_bytes(frame.len());
        Ok(())
    }

    fn packed_get(&self, key: &Digest) -> Result<Option<Vec<u8>>, StoreError> {
        let backend = self.backend();
        let located = {
            let state = backend.state.lock().expect("packed store lock");
            state.index.get(key).map(|e| {
                let file = state.files.get(&e.seg).expect("indexed segment file");
                (Arc::clone(file), *e)
            })
        };
        let Some((file, entry)) = located else {
            self.add(ct_obs::names::STORE_MISSES, 1);
            return Ok(None);
        };
        // The pread happens outside the lock: readers never serialize
        // behind appends. (A concurrent compaction renames the file
        // away, but this fd still reads the old, valid bytes.)
        let read = self.retry_transient(|| {
            let fault = self.injected_fault(faults::sites::STORE_GET_READ);
            if let Some(kind @ (FaultKind::Io | FaultKind::Enospc)) = fault {
                return Err(kind.io_error());
            }
            let mut bytes = vec![0u8; entry.len as usize];
            file.read_exact_at(&mut bytes, entry.offset)?;
            match fault {
                Some(FaultKind::Corruption) => {
                    if let Some(b) = bytes.last_mut() {
                        *b ^= 0x01;
                    }
                }
                Some(FaultKind::PartialWrite) => bytes.truncate(bytes.len() / 2),
                _ => {}
            }
            Ok(bytes)
        });
        let bytes = match read {
            Ok(b) => b,
            // An index entry pointing past EOF is a truncated segment:
            // corruption, not an environmental error.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                self.add(ct_obs::names::STORE_CORRUPT_RECORDS, 1);
                self.packed_tombstone(key)?;
                return Ok(None);
            }
            Err(e) => {
                let path = segment::segment_path(&backend.dir, entry.seg);
                return Err(StoreError::io(&path, &e));
            }
        };
        match segment::validate_entry(&bytes, key) {
            Some(payload) => {
                self.add(ct_obs::names::STORE_HITS, 1);
                Ok(Some(payload.to_vec()))
            }
            None => {
                // Validate-or-evict, packed edition: the eviction is a
                // tombstone masking the corrupt entry, and the caller
                // sees a plain miss.
                self.add(ct_obs::names::STORE_CORRUPT_RECORDS, 1);
                self.packed_tombstone(key)?;
                Ok(None)
            }
        }
    }

    /// Appends a tombstone masking `key` if it is live, returning
    /// whether it was. The `store.evict.remove` failpoint guards the
    /// operation for layout parity with loose eviction.
    fn packed_tombstone(&self, key: &Digest) -> Result<bool, StoreError> {
        let backend = self.backend();
        let guarded =
            self.retry_transient(
                || match self.injected_fault(faults::sites::STORE_EVICT_REMOVE) {
                    Some(kind) => Err(kind.io_error()),
                    None => Ok(()),
                },
            );
        if let Err(e) = guarded {
            return Err(StoreError::io(&backend.dir, &e));
        }
        {
            let state = backend.state.lock().expect("packed store lock");
            if !state.index.contains_key(key) {
                return Ok(false);
            }
        }
        let frame = encode_record(&[]);
        let appended = self.retry_transient(|| {
            let mut state = backend.state.lock().expect("packed store lock");
            self.packed_append_locked(&backend, &mut state, key, segment::KIND_TOMBSTONE, &frame)
        });
        if let Err(e) = appended {
            return Err(StoreError::io(&backend.dir, &e));
        }
        self.add(ct_obs::names::STORE_EVICTIONS, 1);
        Ok(true)
    }

    /// The record walk of [`Store::fsck`] for the packed layout:
    /// prune stale entries, validate every live entry end-to-end,
    /// and — in repair mode — drop corrupt entries and compact every
    /// segment that holds one (plus sealed segments whose live ratio
    /// fell under [`segment::COMPACT_LIVE_RATIO`]).
    fn packed_fsck(&self, options: &FsckOptions) -> Result<FsckReport, StoreError> {
        let backend = self.backend();
        let dir = backend.dir.clone();
        let mut report = FsckReport::default();
        let mut guard = backend.state.lock().expect("packed store lock");
        let state = &mut *guard;

        // Age-based pruning first: a pruned entry is tombstoned out of
        // the index before the scan, so it is neither validated nor
        // counted as live below.
        if let Some(age) = options.prune_max_age {
            let now = segment::now_unix_secs();
            let mut stale: Vec<Digest> = state
                .index
                .iter()
                .filter(|(_, e)| now.saturating_sub(e.ts) >= age.as_secs())
                .map(|(k, _)| *k)
                .collect();
            stale.sort_unstable_by_key(|k| k.0);
            let frame = encode_record(&[]);
            for key in stale {
                self.packed_append_locked(&backend, state, &key, segment::KIND_TOMBSTONE, &frame)
                    .map_err(|e| StoreError::io(&dir, &e))?;
                self.add(ct_obs::names::STORE_EVICTIONS, 1);
                report.pruned += 1;
            }
        }

        // Load every segment image once, then validate each live
        // entry's bytes end-to-end (key, frame, checksum).
        let ids: Vec<u32> = state.files.keys().copied().collect();
        let mut images: HashMap<u32, Vec<u8>> = HashMap::new();
        for &id in &ids {
            let path = segment::segment_path(&dir, id);
            let bytes = fs::read(&path).map_err(|e| StoreError::io(&path, &e))?;
            report.segments_scanned += 1;
            report.bytes_scanned += bytes.len() as u64;
            images.insert(id, bytes);
        }
        let mut live: Vec<(Digest, IndexEntry)> =
            state.index.iter().map(|(k, e)| (*k, *e)).collect();
        live.sort_unstable_by_key(|(_, e)| (e.seg, e.offset));
        let mut corrupt: Vec<Digest> = Vec::new();
        let mut live_bytes: HashMap<u32, u64> = HashMap::new();
        for (key, e) in live {
            report.records_scanned += 1;
            let ok = images[&e.seg]
                .get(e.offset as usize..(e.offset + e.len) as usize)
                .and_then(|b| segment::validate_entry(b, &key))
                .is_some();
            if ok {
                *live_bytes.entry(e.seg).or_default() += e.len;
            } else {
                report.corrupt_records += 1;
                corrupt.push(key);
            }
        }

        if options.repair {
            // Drop each corrupt entry and *tombstone* it, so the
            // repair survives a crash before compaction: replaying
            // the log can never resurrect an entry fsck dropped.
            let mut dirty: BTreeSet<u32> = BTreeSet::new();
            let frame = encode_record(&[]);
            for key in &corrupt {
                if let Some(e) = state.index.remove(key) {
                    dirty.insert(e.seg);
                    self.packed_append_locked(
                        &backend,
                        state,
                        key,
                        segment::KIND_TOMBSTONE,
                        &frame,
                    )
                    .map_err(|e| StoreError::io(&dir, &e))?;
                    self.add(ct_obs::names::STORE_CORRUPT_RECORDS, 1);
                    self.add(ct_obs::names::STORE_EVICTIONS, 1);
                    report.repaired += 1;
                }
            }
            for &id in &ids {
                let image = &images[&id];
                if image.is_empty() {
                    continue;
                }
                let live = *live_bytes.get(&id).unwrap_or(&0) as f64;
                let low_ratio = id != state.active.id
                    && live / (image.len() as f64) < segment::COMPACT_LIVE_RATIO;
                if dirty.contains(&id) || low_ratio {
                    self.packed_compact_locked(&backend, state, id, &mut report)?;
                }
            }
        }
        Ok(report)
    }

    /// Rewrites segment `id` keeping only its live entries (and the
    /// tombstones still masking older puts in lower segments),
    /// sealed with a fresh footer, via stage-then-rename under `tmp/`
    /// — a crash mid-compaction leaves the original segment
    /// untouched. Caller holds the state lock.
    fn packed_compact_locked(
        &self,
        backend: &PackedBackend,
        state: &mut PackedState,
        id: u32,
        report: &mut FsckReport,
    ) -> Result<(), StoreError> {
        let path = segment::segment_path(&backend.dir, id);
        if let Some(kind) = self.injected_fault(faults::sites::SEGMENT_COMPACT) {
            return Err(StoreError::io(&path, &kind.io_error()));
        }
        // Read the segment fresh — repair tombstones may have landed
        // after any earlier image was taken.
        let image = fs::read(&path).map_err(|e| StoreError::io(&path, &e))?;
        let image = image.as_slice();
        // The full entry list: the active segment's pending list is
        // authoritative (= its scan); sealed segments use the footer,
        // and anything else is frame-scanned.
        let entries: Vec<EntryMeta> = if id == state.active.id {
            state.active.pending.clone()
        } else if let Some(footer) = segment::decode_footer(image) {
            footer.entries
        } else {
            segment::scan_entries(image, image.len() as u64).entries
        };
        let mut out: Vec<u8> = Vec::new();
        let mut metas: Vec<EntryMeta> = Vec::new();
        for e in entries {
            let keep = if e.kind == segment::KIND_TOMBSTONE {
                // Dropping a tombstone for a dead key could resurrect
                // an older put in a lower segment on the next replay;
                // a live key's tombstones are superseded and safe to
                // drop.
                !state.index.contains_key(&e.key)
            } else {
                state.index.get(&e.key)
                    == Some(&IndexEntry {
                        seg: id,
                        offset: e.offset,
                        len: e.len,
                        ts: e.ts,
                    })
            };
            if !keep {
                continue;
            }
            let Some(bytes) = image.get(e.offset as usize..(e.offset + e.len) as usize) else {
                continue;
            };
            if e.kind == segment::KIND_PUT && segment::validate_entry(bytes, &e.key).is_none() {
                continue;
            }
            let offset = out.len() as u64;
            out.extend_from_slice(bytes);
            metas.push(EntryMeta { offset, ..e });
        }
        out.extend_from_slice(&segment::encode_footer(&metas));
        let tmp = self.root.join("tmp").join(format!(
            "seg-{id:04}.compact.{}.{:016x}.{}.tmp",
            std::process::id(),
            startup_nonce(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let staged = (|| -> std::io::Result<fs::File> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_all()?;
            fs::rename(&tmp, &path)?;
            fsync_dir(&backend.dir)?;
            fs::OpenOptions::new().read(true).write(true).open(&path)
        })();
        let file = match staged {
            Ok(f) => f,
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                return Err(StoreError::io(&path, &e));
            }
        };
        state.files.insert(id, Arc::new(file));
        for m in &metas {
            if m.kind != segment::KIND_PUT {
                continue;
            }
            if let Some(ie) = state.index.get_mut(&m.key) {
                if ie.seg == id {
                    ie.offset = m.offset;
                }
            }
        }
        self.add(ct_obs::names::STORE_SEGMENT_COMPACTIONS, 1);
        self.add(ct_obs::names::STORE_SEGMENT_SEALS, 1);
        report.segments_compacted += 1;
        if id == state.active.id {
            // The active segment is sealed now; appends need a fresh
            // target.
            let next = state.files.keys().max().copied().unwrap_or(0) + 1;
            let npath = segment::segment_path(&backend.dir, next);
            let nfile = fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(&npath)
                .map_err(|e| StoreError::io(&npath, &e))?;
            files_insert_fresh(state, next, nfile);
        }
        Ok(())
    }
}

/// Registers a brand-new empty segment as the append target.
fn files_insert_fresh(state: &mut PackedState, id: u32, file: fs::File) {
    state.files.insert(id, Arc::new(file));
    state.active = ActiveSegment {
        id,
        len: 0,
        unsynced: 0,
        pending: Vec::new(),
    };
}

/// What [`Store::fsck`] is allowed to do.
#[derive(Debug, Clone)]
pub struct FsckOptions {
    /// Evict corrupt records and sweep orphaned staging files; `false`
    /// reports only and modifies nothing.
    pub repair: bool,
    /// Minimum age before a `tmp/` staging file counts as orphaned
    /// (see [`Store::sweep_tmp`]).
    pub tmp_max_age: Duration,
    /// When set, *prune* valid records at least this old (loose: by
    /// file mtime; packed: by entry write timestamp). Pruning acts
    /// whenever set — with or without `repair` — because passing an
    /// age is already an explicit destructive request.
    pub prune_max_age: Option<Duration>,
}

impl Default for FsckOptions {
    fn default() -> Self {
        Self {
            repair: false,
            tmp_max_age: DEFAULT_TMP_MAX_AGE,
            prune_max_age: None,
        }
    }
}

/// What an [`Store::fsck`] walk found (and, in repair mode, fixed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Record files whose frame was validated.
    pub records_scanned: usize,
    /// Total record bytes read.
    pub bytes_scanned: u64,
    /// Records that failed frame validation.
    pub corrupt_records: usize,
    /// Corrupt records evicted (repair mode only; always ≤
    /// `corrupt_records`).
    pub repaired: usize,
    /// Staging files present under `tmp/`.
    pub tmp_files: usize,
    /// Staging files swept as orphans (repair mode only).
    pub tmp_swept: usize,
    /// Segment files walked (packed layout only).
    pub segments_scanned: usize,
    /// Segments rewritten by compaction (packed repair mode only).
    pub segments_compacted: usize,
    /// Valid-but-stale records pruned by age
    /// ([`FsckOptions::prune_max_age`]).
    pub pruned: usize,
}

impl FsckReport {
    /// Whether the store needs no attention: every record validates
    /// and no staging residue is present.
    pub fn clean(&self) -> bool {
        self.corrupt_records == 0 && self.tmp_files == 0
    }

    /// The machine-readable summary the `ct fsck` subcommand prints:
    /// one `fsck,<field>,<value>` line per field, in declaration
    /// order, so scripts can grep exact values.
    pub fn to_csv(&self) -> String {
        format!(
            "fsck,records_scanned,{}\n\
             fsck,bytes_scanned,{}\n\
             fsck,corrupt_records,{}\n\
             fsck,repaired,{}\n\
             fsck,tmp_files,{}\n\
             fsck,tmp_swept,{}\n\
             fsck,segments_scanned,{}\n\
             fsck,segments_compacted,{}\n\
             fsck,pruned,{}\n",
            self.records_scanned,
            self.bytes_scanned,
            self.corrupt_records,
            self.repaired,
            self.tmp_files,
            self.tmp_swept,
            self.segments_scanned,
            self.segments_compacted,
            self.pruned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{sites, FaultSpec};
    use crate::hash::StableHasher;

    fn key(label: &str) -> Digest {
        let mut h = StableHasher::new();
        h.write_str(label);
        h.finish()
    }

    /// A unique on-disk root per test, with a local registry so counter
    /// assertions are exact even under the parallel test runner.
    fn scratch(tag: &str) -> (Store, Arc<ct_obs::Registry>, PathBuf) {
        let root = std::env::temp_dir().join(format!("ct-store-unit-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let registry = Arc::new(ct_obs::Registry::new());
        let store = Store::open_with_registry(&root, Arc::clone(&registry)).unwrap();
        (store, registry, root)
    }

    /// Like [`scratch`], with a private armed-fault registry.
    fn faulty_scratch(tag: &str) -> (Store, Arc<ct_obs::Registry>, Arc<FaultRegistry>, PathBuf) {
        let root =
            std::env::temp_dir().join(format!("ct-store-fault-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let registry = Arc::new(ct_obs::Registry::new());
        let faults = Arc::new(FaultRegistry::with_obs(Arc::clone(&registry)));
        let store =
            Store::open_with_faults(&root, Arc::clone(&registry), Arc::clone(&faults)).unwrap();
        (store, registry, faults, root)
    }

    fn counter(registry: &ct_obs::Registry, name: &str) -> u64 {
        registry.snapshot().counter(name).unwrap_or(0)
    }

    #[test]
    fn put_get_round_trip_with_counters() {
        let (store, reg, root) = scratch("round-trip");
        let k = key("a");
        assert_eq!(store.get(&k).unwrap(), None);
        store.put(&k, b"payload").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"payload".to_vec()));
        assert_eq!(counter(&reg, ct_obs::names::STORE_MISSES), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_HITS), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_RECORDS_WRITTEN), 1);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn overwrite_replaces_payload() {
        let (store, _, root) = scratch("overwrite");
        let k = key("a");
        store.put(&k, b"v1").unwrap();
        store.put(&k, b"v2").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"v2".to_vec()));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn corrupt_record_is_counted_evicted_and_reported_as_miss() {
        let (store, reg, root) = scratch("corrupt");
        let k = key("a");
        store.put(&k, b"payload").unwrap();
        let path = store.record_path(&k);

        // Truncate mid-payload, as a crash during a non-atomic writer
        // would have.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        assert_eq!(store.get(&k).unwrap(), None);
        assert_eq!(counter(&reg, ct_obs::names::STORE_CORRUPT_RECORDS), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_EVICTIONS), 1);
        assert!(!path.exists(), "corrupt record must be evicted");

        // Recompute-and-rewrite path: a fresh put fully heals the key.
        store.put(&k, b"payload").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"payload".to_vec()));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn no_temp_residue_after_writes() {
        let (store, _, root) = scratch("tmp-residue");
        for i in 0..10 {
            store.put(&key(&format!("k{i}")), &[i as u8; 64]).unwrap();
        }
        let leftovers: Vec<_> = fs::read_dir(root.join("tmp")).unwrap().collect();
        assert!(leftovers.is_empty(), "tmp/ must be empty: {leftovers:?}");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn evict_and_invalidate() {
        let (store, reg, root) = scratch("evict");
        let k = key("a");
        assert!(!store.evict(&k).unwrap());
        store.put(&k, b"x").unwrap();
        assert!(store.evict(&k).unwrap());
        assert_eq!(store.get(&k).unwrap(), None);

        store.put(&k, b"x").unwrap();
        store.invalidate(&k).unwrap();
        assert_eq!(store.get(&k).unwrap(), None);
        assert_eq!(counter(&reg, ct_obs::names::STORE_CORRUPT_RECORDS), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_EVICTIONS), 2);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn staged_names_embed_pid_and_startup_nonce() {
        // The collision-avoidance contract for multi-process stores:
        // a staged filename must be unique across processes even under
        // PID reuse, so it carries key, PID, startup nonce, and
        // sequence — and never repeats within a process.
        let nonce = startup_nonce();
        assert_eq!(nonce, startup_nonce(), "nonce is per-process stable");
        let (store, _, root) = scratch("tmp-name");
        let k = key("a");
        let a = store.staged_path(&k);
        let b = store.staged_path(&k);
        assert_ne!(a, b, "every staged path is unique");
        let name = a.file_name().unwrap().to_str().unwrap();
        let expected_prefix = format!("{}.{}.{nonce:016x}.", k.to_hex(), std::process::id());
        assert!(
            name.starts_with(&expected_prefix) && name.ends_with(".tmp"),
            "staged name {name:?} must carry key, PID, and nonce"
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn transient_write_fault_is_retried_to_success() {
        let (store, reg, faults, root) = faulty_scratch("retry-write");
        faults.arm(FaultSpec::once(sites::STORE_PUT_WRITE, 1, FaultKind::Io));
        let k = key("a");
        store.put(&k, b"payload").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"payload".to_vec()));
        assert_eq!(counter(&reg, ct_obs::names::STORE_RETRIES), 1);
        assert_eq!(counter(&reg, ct_obs::names::FAULTS_FIRED), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_RECORDS_WRITTEN), 1);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn enospc_is_not_retried_and_leaves_no_tmp_residue() {
        let (store, reg, faults, root) = faulty_scratch("enospc");
        faults.arm(FaultSpec::every(
            sites::STORE_PUT_WRITE,
            1,
            FaultKind::Enospc,
        ));
        let e = store.put(&key("a"), b"payload").unwrap_err();
        assert!(e.to_string().contains("disk-full"), "{e}");
        assert_eq!(counter(&reg, ct_obs::names::STORE_RETRIES), 0);
        let leftovers: Vec<_> = fs::read_dir(root.join("tmp")).unwrap().collect();
        assert!(leftovers.is_empty(), "failed put must clean its tmp file");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn rename_fault_fails_put_and_cleans_tmp() {
        let (store, reg, faults, root) = faulty_scratch("rename");
        faults.arm(FaultSpec::every(
            sites::STORE_PUT_RENAME,
            1,
            FaultKind::Enospc,
        ));
        assert!(store.put(&key("a"), b"payload").is_err());
        assert!(fs::read_dir(root.join("tmp")).unwrap().next().is_none());
        assert_eq!(counter(&reg, ct_obs::names::STORE_RECORDS_WRITTEN), 0);
        // Disarm and the same put heals fully.
        faults.disarm_all();
        store.put(&key("a"), b"payload").unwrap();
        assert_eq!(store.get(&key("a")).unwrap(), Some(b"payload".to_vec()));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn dir_fsync_failpoint_fails_put_after_publish() {
        let (store, reg, faults, root) = faulty_scratch("sync-dir");
        faults.arm(FaultSpec::every(
            sites::STORE_PUT_SYNC_DIR,
            1,
            FaultKind::Enospc,
        ));
        let k = key("a");
        assert!(store.put(&k, b"payload").is_err());
        // The rename landed before the dir fsync failed: the record is
        // visible and valid (just not provably durable yet), so the
        // conservative error is honest, not destructive.
        faults.disarm_all();
        assert_eq!(store.get(&k).unwrap(), Some(b"payload".to_vec()));
        assert_eq!(counter(&reg, ct_obs::names::FAULTS_FIRED), 1);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn torn_write_fault_fails_put_without_publishing() {
        let (store, _, faults, root) = faulty_scratch("torn");
        faults.arm(FaultSpec::every(
            sites::STORE_PUT_WRITE,
            1,
            FaultKind::PartialWrite,
        ));
        let k = key("a");
        assert!(store.put(&k, b"payload").is_err());
        assert_eq!(
            fs::read_dir(root.join("objects").join(&k.to_hex()[..2]))
                .map(|d| d.count())
                .unwrap_or(0),
            0,
            "a torn stage must never publish a record"
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn corruption_fault_on_write_is_healed_on_read() {
        let (store, reg, faults, root) = faulty_scratch("corrupt-write");
        faults.arm(FaultSpec::once(
            sites::STORE_PUT_WRITE,
            1,
            FaultKind::Corruption,
        ));
        let k = key("a");
        store.put(&k, b"payload").unwrap(); // "succeeds", frame mangled
        assert_eq!(store.get(&k).unwrap(), None, "checksum must catch it");
        assert_eq!(counter(&reg, ct_obs::names::STORE_CORRUPT_RECORDS), 1);
        store.put(&k, b"payload").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"payload".to_vec()));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn read_fault_surfaces_after_retry_budget() {
        let (store, reg, faults, root) = faulty_scratch("read-io");
        store.put(&key("a"), b"payload").unwrap();
        faults.arm(FaultSpec::every(sites::STORE_GET_READ, 1, FaultKind::Io));
        assert!(store.get(&key("a")).is_err(), "budget exhausted → error");
        // The default 3 ms deadline admits the 1 ms and 2 ms backoffs
        // (1 + 2 = 3) and rejects the 4 ms one → exactly 2 retries.
        assert_eq!(counter(&reg, ct_obs::names::STORE_RETRIES), 2);
        assert_eq!(counter(&reg, ct_obs::names::FAULTS_FIRED), 3);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn sweep_tmp_honors_age_threshold() {
        let (store, reg, root) = scratch("sweep");
        let orphan = root.join("tmp").join("deadbeef.999.0123456789abcdef.0.tmp");
        fs::write(&orphan, b"staged then crashed").unwrap();
        // Fresh files are live-writer territory: an hour-long minimum
        // age must spare them.
        assert_eq!(store.sweep_tmp(DEFAULT_TMP_MAX_AGE).unwrap(), 0);
        assert!(orphan.exists());
        // Age zero treats everything as orphaned.
        assert_eq!(store.sweep_tmp(Duration::ZERO).unwrap(), 1);
        assert!(!orphan.exists());
        assert_eq!(counter(&reg, ct_obs::names::STORE_TMP_SWEPT), 1);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn fsck_reports_then_repairs_corruption_and_orphans() {
        let (store, reg, root) = scratch("fsck");
        for i in 0..4 {
            store.put(&key(&format!("k{i}")), &[i as u8; 32]).unwrap();
        }
        // Damage two records (truncation + bit flip) and orphan a
        // staging file, as two crashed writers would have.
        let p0 = store.record_path(&key("k0"));
        let bytes = fs::read(&p0).unwrap();
        fs::write(&p0, &bytes[..10]).unwrap();
        let p1 = store.record_path(&key("k1"));
        let mut bytes = fs::read(&p1).unwrap();
        *bytes.last_mut().unwrap() ^= 0xff;
        fs::write(&p1, bytes).unwrap();
        fs::write(root.join("tmp").join("orphan.1.2.3.tmp"), b"x").unwrap();

        // Read-only pass: counts everything, repairs nothing.
        let report = store.fsck(&FsckOptions::default()).unwrap();
        assert_eq!(report.records_scanned, 4);
        assert_eq!(report.corrupt_records, 2);
        assert_eq!(report.repaired, 0);
        assert_eq!(report.tmp_files, 1);
        assert_eq!(report.tmp_swept, 0);
        assert!(!report.clean());
        assert!(p0.exists(), "read-only fsck must not modify the store");

        // Repair pass: evicts both corrupt records, sweeps the orphan.
        let report = store
            .fsck(&FsckOptions {
                repair: true,
                tmp_max_age: Duration::ZERO,
                prune_max_age: None,
            })
            .unwrap();
        assert_eq!(report.corrupt_records, 2);
        assert_eq!(report.repaired, 2);
        assert_eq!(report.tmp_swept, 1);
        assert!(!p0.exists() && !p1.exists());
        assert_eq!(counter(&reg, ct_obs::names::STORE_CORRUPT_RECORDS), 2);
        assert_eq!(counter(&reg, ct_obs::names::STORE_EVICTIONS), 2);
        assert_eq!(counter(&reg, ct_obs::names::STORE_TMP_SWEPT), 1);

        // A third pass reports a clean store, and the summary format
        // scripts grep is pinned.
        let report = store.fsck(&FsckOptions::default()).unwrap();
        assert!(report.clean());
        assert_eq!(report.records_scanned, 2);
        assert!(report.to_csv().contains("fsck,corrupt_records,0\n"));
        assert!(report.to_csv().starts_with("fsck,records_scanned,2\n"));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn open_sweeps_only_provably_old_orphans() {
        let root =
            std::env::temp_dir().join(format!("ct-store-unit-{}-open-sweep", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("tmp")).unwrap();
        let fresh = root.join("tmp").join("fresh.1.2.3.tmp");
        fs::write(&fresh, b"live writer staging").unwrap();
        let _ = Store::open(&root).unwrap();
        assert!(
            fresh.exists(),
            "open-time sweep must never race a live writer's fresh file"
        );
        let _ = fs::remove_dir_all(root);
    }

    /// A packed scratch store with tiny thresholds so tests exercise
    /// rolls and group syncs without megabytes of payload.
    fn packed_scratch(
        tag: &str,
        options: PackedOptions,
    ) -> (Store, Arc<ct_obs::Registry>, Arc<FaultRegistry>, PathBuf) {
        let root =
            std::env::temp_dir().join(format!("ct-store-packed-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let registry = Arc::new(ct_obs::Registry::new());
        let faults = Arc::new(FaultRegistry::with_obs(Arc::clone(&registry)));
        let store = Store::open_packed_with_options(
            &root,
            Arc::clone(&registry),
            Arc::clone(&faults),
            options,
        )
        .unwrap();
        (store, registry, faults, root)
    }

    const SMALL_SEGMENTS: PackedOptions = PackedOptions {
        roll_bytes: 512,
        sync_bytes: 128,
    };

    #[test]
    fn packed_round_trip_overwrite_and_counters() {
        let (store, reg, _, root) = packed_scratch("round-trip", SMALL_SEGMENTS);
        assert!(store.is_packed());
        let k = key("a");
        assert_eq!(store.get(&k).unwrap(), None);
        store.put(&k, b"v1").unwrap();
        store.put(&k, b"v2").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"v2".to_vec()));
        assert_eq!(counter(&reg, ct_obs::names::STORE_MISSES), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_HITS), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_RECORDS_WRITTEN), 2);
        assert_eq!(counter(&reg, ct_obs::names::STORE_SEGMENT_APPENDS), 2);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn packed_rolls_segments_and_reopens_from_footers() {
        let (store, reg, _, root) = packed_scratch("roll", SMALL_SEGMENTS);
        for i in 0..12u8 {
            store.put(&key(&format!("k{i}")), &[i; 100]).unwrap();
        }
        let seals = counter(&reg, ct_obs::names::STORE_SEGMENT_SEALS);
        assert!(
            seals >= 2,
            "100-byte payloads at roll=512 must seal: {seals}"
        );
        assert!(counter(&reg, ct_obs::names::STORE_SEGMENT_GROUP_SYNCS) >= seals);
        drop(store);

        // Reopen (auto-detected): sealed segments load from footers,
        // only the unsealed tail is frame-scanned, and every record
        // survives bit-for-bit.
        let registry = Arc::new(ct_obs::Registry::new());
        let reopened = Store::open_with_registry(&root, Arc::clone(&registry)).unwrap();
        assert!(reopened.is_packed());
        assert_eq!(
            counter(&registry, ct_obs::names::STORE_SEGMENT_FOOTER_LOADS),
            seals
        );
        assert!(counter(&registry, ct_obs::names::STORE_SEGMENT_SCANS) <= 1);
        for i in 0..12u8 {
            assert_eq!(
                reopened.get(&key(&format!("k{i}"))).unwrap(),
                Some(vec![i; 100]),
                "record k{i} must survive reopen"
            );
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn packed_evict_tombstones_across_reopen() {
        let (store, reg, _, root) = packed_scratch("evict", SMALL_SEGMENTS);
        let k = key("a");
        assert!(!store.evict(&k).unwrap());
        store.put(&k, b"x").unwrap();
        assert!(store.evict(&k).unwrap());
        assert_eq!(store.get(&k).unwrap(), None);
        assert_eq!(counter(&reg, ct_obs::names::STORE_EVICTIONS), 1);
        drop(store);
        // The tombstone replays on reopen: the key must stay dead.
        let reopened = Store::open(&root).unwrap();
        assert_eq!(reopened.get(&k).unwrap(), None);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn packed_truncated_tail_recovers_clean_prefix() {
        let (store, _, _, root) = packed_scratch("torn-tail", SMALL_SEGMENTS);
        store.put(&key("a"), b"first").unwrap();
        store.put(&key("b"), b"second").unwrap();
        drop(store);
        // Tear the tail of the active segment, as a crash mid-append
        // would: the last entry loses its end.
        let seg = root.join("segments").join("seg-0000.ctseg");
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 4]).unwrap();

        let registry = Arc::new(ct_obs::Registry::new());
        let reopened = Store::open_with_registry(&root, Arc::clone(&registry)).unwrap();
        assert_eq!(
            counter(&registry, ct_obs::names::STORE_SEGMENT_TRUNCATED_TAILS),
            1
        );
        assert_eq!(reopened.get(&key("a")).unwrap(), Some(b"first".to_vec()));
        assert_eq!(reopened.get(&key("b")).unwrap(), None, "torn entry gone");
        // The store keeps working where the tail was truncated.
        reopened.put(&key("b"), b"second again").unwrap();
        assert_eq!(
            reopened.get(&key("b")).unwrap(),
            Some(b"second again".to_vec())
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn packed_corrupt_entry_evicts_on_read_and_fsck_compacts() {
        let (store, reg, _, root) = packed_scratch("bit-flip", SMALL_SEGMENTS);
        store.put(&key("a"), b"aaaa").unwrap();
        store.put(&key("b"), b"bbbb").unwrap();
        drop(store);
        // Flip one payload byte mid-segment (inside entry "a", whose
        // frame starts after the 25-byte entry header).
        let seg = root.join("segments").join("seg-0000.ctseg");
        let mut bytes = fs::read(&seg).unwrap();
        let target = crate::segment::ENTRY_HEADER_LEN + crate::format::HEADER_LEN;
        bytes[target] ^= 0xff;
        fs::write(&seg, &bytes).unwrap();

        let reopened = Store::open_with_registry(&root, Arc::clone(&reg)).unwrap();
        // fsck (read-only) sees exactly one corrupt live entry.
        let report = reopened.fsck(&FsckOptions::default()).unwrap();
        assert_eq!(report.records_scanned, 2);
        assert_eq!(report.segments_scanned, 1);
        assert_eq!(report.corrupt_records, 1);
        assert_eq!(report.segments_compacted, 0);
        // Repair drops it and compacts the dirty segment.
        let report = reopened
            .fsck(&FsckOptions {
                repair: true,
                ..FsckOptions::default()
            })
            .unwrap();
        assert_eq!(report.repaired, 1);
        assert_eq!(report.segments_compacted, 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_SEGMENT_COMPACTIONS), 1);
        // The survivor reads clean; the corrupt key is a plain miss;
        // a third fsck is clean.
        assert_eq!(reopened.get(&key("b")).unwrap(), Some(b"bbbb".to_vec()));
        assert_eq!(reopened.get(&key("a")).unwrap(), None);
        assert!(reopened.fsck(&FsckOptions::default()).unwrap().clean());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn packed_read_path_evicts_corruption_like_loose() {
        let (store, reg, faults, root) = packed_scratch("read-corrupt", SMALL_SEGMENTS);
        store.put(&key("a"), b"payload").unwrap();
        faults.arm(FaultSpec::once(
            sites::STORE_GET_READ,
            1,
            FaultKind::Corruption,
        ));
        assert_eq!(store.get(&key("a")).unwrap(), None, "checksum catches it");
        assert_eq!(counter(&reg, ct_obs::names::STORE_CORRUPT_RECORDS), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_EVICTIONS), 1);
        // The eviction tombstoned the entry — and a fresh put heals.
        store.put(&key("a"), b"payload").unwrap();
        assert_eq!(store.get(&key("a")).unwrap(), Some(b"payload".to_vec()));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn packed_open_refuses_a_loose_root_and_vice_versa() {
        let (_, _, root) = scratch("layout-conflict");
        let e = Store::open_packed(&root).unwrap_err();
        assert!(e.to_string().contains("loose store"), "{e}");
        let _ = fs::remove_dir_all(&root);

        // And auto-detection keeps opening packed roots as packed.
        let (packed, _, _, proot) = packed_scratch("layout-auto", SMALL_SEGMENTS);
        packed.put(&key("a"), b"x").unwrap();
        drop(packed);
        assert!(Store::open(&proot).unwrap().is_packed());
        let _ = fs::remove_dir_all(proot);
    }

    #[test]
    fn prune_removes_stale_records_in_both_layouts() {
        // Loose: age zero prunes every valid record.
        let (store, reg, root) = scratch("prune-loose");
        for i in 0..3u8 {
            store.put(&key(&format!("k{i}")), &[i; 16]).unwrap();
        }
        let report = store
            .fsck(&FsckOptions {
                prune_max_age: Some(Duration::ZERO),
                ..FsckOptions::default()
            })
            .unwrap();
        assert_eq!(report.pruned, 3);
        assert_eq!(report.corrupt_records, 0);
        assert_eq!(store.get(&key("k0")).unwrap(), None);
        assert_eq!(counter(&reg, ct_obs::names::STORE_EVICTIONS), 3);
        let _ = fs::remove_dir_all(root);

        // Packed: same contract, tombstone-based.
        let (store, reg, _, root) = packed_scratch("prune-packed", SMALL_SEGMENTS);
        for i in 0..3u8 {
            store.put(&key(&format!("k{i}")), &[i; 16]).unwrap();
        }
        let report = store
            .fsck(&FsckOptions {
                prune_max_age: Some(Duration::ZERO),
                ..FsckOptions::default()
            })
            .unwrap();
        assert_eq!(report.pruned, 3);
        assert_eq!(store.get(&key("k0")).unwrap(), None);
        assert_eq!(counter(&reg, ct_obs::names::STORE_EVICTIONS), 3);
        // Future-dated records never prune; fresh ones survive a
        // bounded age.
        store.put(&key("fresh"), b"new").unwrap();
        let report = store
            .fsck(&FsckOptions {
                prune_max_age: Some(Duration::from_secs(3600)),
                ..FsckOptions::default()
            })
            .unwrap();
        assert_eq!(report.pruned, 0);
        assert_eq!(store.get(&key("fresh")).unwrap(), Some(b"new".to_vec()));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn packed_compaction_crash_leaves_original_segment_intact() {
        let (store, _reg, faults, root) = packed_scratch("compact-crash", SMALL_SEGMENTS);
        store.put(&key("a"), b"aaaa").unwrap();
        store.put(&key("b"), b"bbbb").unwrap();
        drop(store);
        let seg = root.join("segments").join("seg-0000.ctseg");
        let mut bytes = fs::read(&seg).unwrap();
        let target = crate::segment::ENTRY_HEADER_LEN + crate::format::HEADER_LEN;
        bytes[target] ^= 0xff;
        fs::write(&seg, &bytes).unwrap();

        let registry = Arc::new(ct_obs::Registry::new());
        let store =
            Store::open_with_faults(&root, Arc::clone(&registry), Arc::clone(&faults)).unwrap();
        faults.arm(FaultSpec::once(
            sites::SEGMENT_COMPACT,
            1,
            FaultKind::Enospc,
        ));
        assert!(
            store
                .fsck(&FsckOptions {
                    repair: true,
                    ..FsckOptions::default()
                })
                .is_err(),
            "injected compaction crash must surface"
        );
        assert_eq!(
            counter(&registry, ct_obs::names::STORE_SEGMENT_COMPACTIONS),
            0
        );
        // The heal is already durable — the corrupt entry was
        // tombstoned before compaction started — and nothing leaked
        // into tmp/. The survivor reads clean, here and after reopen.
        let report = store
            .fsck(&FsckOptions {
                repair: true,
                tmp_max_age: Duration::ZERO,
                prune_max_age: None,
            })
            .unwrap();
        assert!(
            report.clean(),
            "store healed despite the crashed compaction"
        );
        assert_eq!(
            report.tmp_swept, 0,
            "crashed compaction must not leak tmp files"
        );
        assert_eq!(store.get(&key("b")).unwrap(), Some(b"bbbb".to_vec()));
        assert_eq!(store.get(&key("a")).unwrap(), None);
        drop(store);
        let reopened = Store::open(&root).unwrap();
        assert_eq!(reopened.get(&key("a")).unwrap(), None, "tombstone replays");
        assert_eq!(reopened.get(&key("b")).unwrap(), Some(b"bbbb".to_vec()));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn fsck_csv_pins_the_extended_field_order() {
        let report = FsckReport {
            records_scanned: 7,
            pruned: 2,
            ..FsckReport::default()
        };
        let csv = report.to_csv();
        assert!(csv.starts_with("fsck,records_scanned,7\n"));
        assert!(
            csv.ends_with("fsck,segments_scanned,0\nfsck,segments_compacted,0\nfsck,pruned,2\n")
        );
    }
}
