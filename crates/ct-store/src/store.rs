//! The on-disk store: content-addressed records under a root
//! directory.
//!
//! Layout:
//!
//! ```text
//! <root>/objects/<hh>/<hex32>.rec   records, sharded by first hex byte
//! <root>/tmp/                       staging area for atomic writes
//! ```
//!
//! Writes are crash-safe: the frame is written to a unique file under
//! `tmp/` and then `rename`d into place, so a reader never observes a
//! half-written record at its final path (a crash can only leave a
//! stale temp file, which is invisible to lookups). Reads validate the
//! record frame and *evict* anything corrupt, reporting a miss — so a
//! torn record from a `kill -9` degrades to recompute-and-rewrite.
//!
//! Every operation reports to [`ct_obs`] counters (`store.hits`,
//! `store.misses`, `store.records_written`, `store.corrupt_records`,
//! `store.evictions`). Methods deliberately open no [`ct_obs`] spans:
//! they are called from worker threads, and spans are reserved for
//! coordinator code so the span tree stays thread-count invariant.

use crate::error::StoreError;
use crate::format::{decode_record, encode_record};
use crate::hash::Digest;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a store reports its metrics.
#[derive(Debug, Clone)]
enum MetricsSink {
    /// The process-global [`ct_obs`] registry (the default).
    Global,
    /// A caller-owned registry — used by tests that need exact counter
    /// assertions without racing other threads on the global registry.
    Local(Arc<ct_obs::Registry>),
}

/// A handle to a content-addressed artifact store rooted at a
/// directory. Cheap to clone; all state lives on disk.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    sink: MetricsSink,
}

/// Distinguishes concurrent writers staging into the same `tmp/`.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Store {
    /// Opens (creating if needed) a store rooted at `root`, reporting
    /// metrics to the global [`ct_obs`] registry.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory tree cannot be
    /// created.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_inner(root.as_ref(), MetricsSink::Global)
    }

    /// Like [`Store::open`], but reporting to a caller-owned registry.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory tree cannot be
    /// created.
    pub fn open_with_registry(
        root: impl AsRef<Path>,
        registry: Arc<ct_obs::Registry>,
    ) -> Result<Self, StoreError> {
        Self::open_inner(root.as_ref(), MetricsSink::Local(registry))
    }

    fn open_inner(root: &Path, sink: MetricsSink) -> Result<Self, StoreError> {
        for dir in [root.join("objects"), root.join("tmp")] {
            fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, &e))?;
        }
        Ok(Self {
            root: root.to_path_buf(),
            sink,
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path a record for `key` lives at (whether or not it
    /// exists yet). Exposed for tests and tooling that inspect or
    /// damage records deliberately.
    pub fn record_path(&self, key: &Digest) -> PathBuf {
        let hex = key.to_hex();
        self.root
            .join("objects")
            .join(&hex[0..2])
            .join(format!("{hex}.rec"))
    }

    fn add(&self, name: &str, delta: u64) {
        match &self.sink {
            MetricsSink::Global => ct_obs::add(name, delta),
            MetricsSink::Local(r) => r.counter(name).add(delta),
        }
    }

    fn observe_bytes(&self, len: usize) {
        let bounds = &ct_obs::names::STORE_RECORD_BYTES_BOUNDS;
        let h = match &self.sink {
            MetricsSink::Global => ct_obs::histogram(ct_obs::names::STORE_RECORD_BYTES, bounds),
            MetricsSink::Local(r) => r.histogram(ct_obs::names::STORE_RECORD_BYTES, bounds),
        };
        h.observe(len as f64);
    }

    /// Fetches the payload stored under `key`.
    ///
    /// Returns `Ok(None)` on a miss *and* on a corrupt record: a
    /// record that fails frame validation (truncated, bad magic, wrong
    /// version, checksum mismatch) is counted as `store.corrupt_records`,
    /// evicted from disk, and reported as a miss, so the caller's
    /// recompute-and-rewrite path handles both cases identically.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] only for environmental failures
    /// (e.g. permission errors) — never for corrupt content.
    pub fn get(&self, key: &Digest) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.record_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.add(ct_obs::names::STORE_MISSES, 1);
                return Ok(None);
            }
            Err(e) => return Err(StoreError::io(&path, &e)),
        };
        match decode_record(&bytes) {
            Ok(payload) => {
                self.add(ct_obs::names::STORE_HITS, 1);
                Ok(Some(payload.to_vec()))
            }
            Err(_corruption) => {
                self.add(ct_obs::names::STORE_CORRUPT_RECORDS, 1);
                self.remove_file(&path)?;
                Ok(None)
            }
        }
    }

    /// Atomically writes `payload` as the record for `key`,
    /// overwriting any existing record.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when staging or renaming fails.
    pub fn put(&self, key: &Digest, payload: &[u8]) -> Result<(), StoreError> {
        let path = self.record_path(key);
        let dir = path.parent().expect("record path has a parent");
        fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, &e))?;

        let tmp = self.root.join("tmp").join(format!(
            "{}.{}.{}.tmp",
            key.to_hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let frame = encode_record(payload);
        {
            let mut f = fs::File::create(&tmp).map_err(|e| StoreError::io(&tmp, &e))?;
            f.write_all(&frame).map_err(|e| StoreError::io(&tmp, &e))?;
            // Flush to stable storage before the rename publishes the
            // record, so a crash cannot expose an empty committed file.
            f.sync_all().map_err(|e| StoreError::io(&tmp, &e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| StoreError::io(&path, &e))?;
        self.add(ct_obs::names::STORE_RECORDS_WRITTEN, 1);
        self.observe_bytes(frame.len());
        Ok(())
    }

    /// Removes the record for `key` because its *payload* failed the
    /// caller's decoding even though the frame validated — e.g. a
    /// record written by an older payload schema. Counted as a corrupt
    /// record plus an eviction.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the removal itself fails.
    pub fn invalidate(&self, key: &Digest) -> Result<(), StoreError> {
        self.add(ct_obs::names::STORE_CORRUPT_RECORDS, 1);
        self.remove_file(&self.record_path(key))
    }

    /// Evicts the record for `key`, returning whether it existed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the removal fails for a reason
    /// other than the record being absent.
    pub fn evict(&self, key: &Digest) -> Result<bool, StoreError> {
        let path = self.record_path(key);
        if !path.exists() {
            return Ok(false);
        }
        self.remove_file(&path)?;
        Ok(true)
    }

    fn remove_file(&self, path: &Path) -> Result<(), StoreError> {
        match fs::remove_file(path) {
            Ok(()) => {
                self.add(ct_obs::names::STORE_EVICTIONS, 1);
                Ok(())
            }
            // A concurrent evictor got there first; the record is gone
            // either way.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::io(path, &e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::StableHasher;

    fn key(label: &str) -> Digest {
        let mut h = StableHasher::new();
        h.write_str(label);
        h.finish()
    }

    /// A unique on-disk root per test, with a local registry so counter
    /// assertions are exact even under the parallel test runner.
    fn scratch(tag: &str) -> (Store, Arc<ct_obs::Registry>, PathBuf) {
        let root = std::env::temp_dir().join(format!("ct-store-unit-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let registry = Arc::new(ct_obs::Registry::new());
        let store = Store::open_with_registry(&root, Arc::clone(&registry)).unwrap();
        (store, registry, root)
    }

    fn counter(registry: &ct_obs::Registry, name: &str) -> u64 {
        registry.snapshot().counter(name).unwrap_or(0)
    }

    #[test]
    fn put_get_round_trip_with_counters() {
        let (store, reg, root) = scratch("round-trip");
        let k = key("a");
        assert_eq!(store.get(&k).unwrap(), None);
        store.put(&k, b"payload").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"payload".to_vec()));
        assert_eq!(counter(&reg, ct_obs::names::STORE_MISSES), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_HITS), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_RECORDS_WRITTEN), 1);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn overwrite_replaces_payload() {
        let (store, _, root) = scratch("overwrite");
        let k = key("a");
        store.put(&k, b"v1").unwrap();
        store.put(&k, b"v2").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"v2".to_vec()));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn corrupt_record_is_counted_evicted_and_reported_as_miss() {
        let (store, reg, root) = scratch("corrupt");
        let k = key("a");
        store.put(&k, b"payload").unwrap();
        let path = store.record_path(&k);

        // Truncate mid-payload, as a crash during a non-atomic writer
        // would have.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        assert_eq!(store.get(&k).unwrap(), None);
        assert_eq!(counter(&reg, ct_obs::names::STORE_CORRUPT_RECORDS), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_EVICTIONS), 1);
        assert!(!path.exists(), "corrupt record must be evicted");

        // Recompute-and-rewrite path: a fresh put fully heals the key.
        store.put(&k, b"payload").unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(b"payload".to_vec()));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn no_temp_residue_after_writes() {
        let (store, _, root) = scratch("tmp-residue");
        for i in 0..10 {
            store.put(&key(&format!("k{i}")), &[i as u8; 64]).unwrap();
        }
        let leftovers: Vec<_> = fs::read_dir(root.join("tmp")).unwrap().collect();
        assert!(leftovers.is_empty(), "tmp/ must be empty: {leftovers:?}");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn evict_and_invalidate() {
        let (store, reg, root) = scratch("evict");
        let k = key("a");
        assert!(!store.evict(&k).unwrap());
        store.put(&k, b"x").unwrap();
        assert!(store.evict(&k).unwrap());
        assert_eq!(store.get(&k).unwrap(), None);

        store.put(&k, b"x").unwrap();
        store.invalidate(&k).unwrap();
        assert_eq!(store.get(&k).unwrap(), None);
        assert_eq!(counter(&reg, ct_obs::names::STORE_CORRUPT_RECORDS), 1);
        assert_eq!(counter(&reg, ct_obs::names::STORE_EVICTIONS), 2);
        let _ = fs::remove_dir_all(root);
    }
}
