//! The store abstraction the pipeline is written against.
//!
//! [`StoreBackend`] is the contract [`crate::Store`] always satisfied
//! implicitly — content-addressed get/put with validate-or-evict
//! reads, plus the degradation hooks the pipeline's
//! compute-without-cache fallback needs. Extracting it lets the same
//! pipeline code run against the local loose/packed [`crate::Store`]
//! or the HTTP [`crate::RemoteStore`], selected by
//! [`crate::StoreUrl`] at the CLI — shards on disjoint machines can
//! share one serving store without the pipeline knowing.
//!
//! The contract every backend must honor:
//!
//! - `get` returns a payload **bit-identical** to what `put` stored,
//!   or `None` for both a miss and a record that failed validation
//!   (corrupt records are evicted, never returned);
//! - `put` is atomic: a concurrent or crashed reader sees the old
//!   record or the new one, never a torn hybrid;
//! - errors are *environmental* only (I/O, network); callers respond
//!   by computing without the cache and reporting
//!   [`StoreBackend::note_degraded`], so a failing backend costs time
//!   but never a result.

use crate::error::StoreError;
use crate::faults::FaultKind;
use crate::hash::Digest;
use crate::store::Store;
use std::sync::Arc;

/// A content-addressed artifact store, local or remote.
///
/// The contract every implementation honors: `get` returns a payload
/// bit-identical to what `put` stored (or `None` for both a miss and
/// an evicted-because-corrupt record), `put` is atomic (readers see
/// the old record or the new one, never a torn hybrid), and errors
/// are *environmental* only — callers respond by computing without
/// the cache and reporting [`StoreBackend::note_degraded`], so a
/// failing backend costs time but never a result.
pub trait StoreBackend: Send + Sync + std::fmt::Debug {
    /// Fetches the payload stored under `key`; `Ok(None)` for both a
    /// miss and a corrupt record (which the backend evicts itself).
    ///
    /// # Errors
    ///
    /// Environmental failures only — never corruption.
    fn get(&self, key: &Digest) -> Result<Option<Vec<u8>>, StoreError>;

    /// Atomically stores `payload` under `key`, overwriting any
    /// existing record.
    ///
    /// # Errors
    ///
    /// Environmental failures (disk, network).
    fn put(&self, key: &Digest, payload: &[u8]) -> Result<(), StoreError>;

    /// Evicts the record for `key`, returning whether it existed.
    ///
    /// # Errors
    ///
    /// Environmental failures other than the record being absent.
    fn evict(&self, key: &Digest) -> Result<bool, StoreError>;

    /// Removes the record for `key` because its *payload* failed the
    /// caller's decoding even though the frame validated (e.g. an
    /// older payload schema); counted as corrupt plus evicted.
    ///
    /// # Errors
    ///
    /// Environmental failures.
    fn invalidate(&self, key: &Digest) -> Result<(), StoreError>;

    /// Records that a caller absorbed a backend failure by degrading
    /// to compute-without-cache (counted as `store.degraded` on this
    /// backend's metrics sink).
    fn note_degraded(&self);

    /// Consults the backend's fault registry for `site`, so layers
    /// above the store can place failpoints on the registry a test
    /// (or `CT_FAULTS`) armed. Backends without failpoints — the
    /// remote client — report `None`: faults are injected where the
    /// bytes live, on the server's local store.
    fn injected_fault(&self, site: &str) -> Option<FaultKind> {
        let _ = site;
        None
    }

    /// An owned, shareable handle to this same backend (same root or
    /// connection target, same metrics sink). Lets borrowing callers
    /// like `CaseStudy::build_with_store` retain the backend beyond
    /// the borrow without forcing every call site to start from an
    /// `Arc`.
    fn clone_handle(&self) -> Arc<dyn StoreBackend>;
}

impl StoreBackend for Store {
    fn get(&self, key: &Digest) -> Result<Option<Vec<u8>>, StoreError> {
        Store::get(self, key)
    }

    fn put(&self, key: &Digest, payload: &[u8]) -> Result<(), StoreError> {
        Store::put(self, key, payload)
    }

    fn evict(&self, key: &Digest) -> Result<bool, StoreError> {
        Store::evict(self, key)
    }

    fn invalidate(&self, key: &Digest) -> Result<(), StoreError> {
        Store::invalidate(self, key)
    }

    fn note_degraded(&self) {
        Store::note_degraded(self);
    }

    fn injected_fault(&self, site: &str) -> Option<FaultKind> {
        Store::injected_fault(self, site)
    }

    fn clone_handle(&self) -> Arc<dyn StoreBackend> {
        Arc::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::StableHasher;

    fn key(label: &str) -> Digest {
        let mut h = StableHasher::new();
        h.write_str(label);
        h.finish()
    }

    #[test]
    fn store_round_trips_through_the_trait() {
        let dir = std::env::temp_dir().join(format!("ct-backend-{}", std::process::id()));
        let store = Store::open(&dir).unwrap();
        let backend: &dyn StoreBackend = &store;
        let k = key("trait-round-trip");
        assert_eq!(backend.get(&k).unwrap(), None);
        backend.put(&k, b"payload").unwrap();
        assert_eq!(backend.get(&k).unwrap().as_deref(), Some(&b"payload"[..]));
        let handle = backend.clone_handle();
        assert_eq!(handle.get(&k).unwrap().as_deref(), Some(&b"payload"[..]));
        assert!(backend.evict(&k).unwrap());
        assert_eq!(handle.get(&k).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
