//! The versioned on-disk record format.
//!
//! Every record file is a single self-validating frame:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"CTSTORE1"
//! 8       4     format version, u32 LE (currently 1)
//! 12      8     payload length, u64 LE
//! 20      8     FNV-1a64 checksum of the payload, u64 LE
//! 28      n     payload bytes
//! ```
//!
//! Decoding classifies every way the frame can be wrong
//! ([`Corruption`]) so the store can count and evict bad records
//! instead of panicking or returning garbage.

use crate::hash::checksum64;

/// Leading magic bytes of every record file.
pub const MAGIC: [u8; 8] = *b"CTSTORE1";
/// Current format version. Bump on any layout change; readers treat
/// other versions as corrupt-and-recompute, never as readable.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 28;

/// Why a record failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// The file is shorter than its header claims (or than the header
    /// itself) — the signature of a crash mid-write.
    Truncated,
    /// The magic bytes are wrong: not a record file at all.
    BadMagic,
    /// A record written by an incompatible format version.
    WrongVersion(u32),
    /// The payload does not match its stored checksum.
    BadChecksum,
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Corruption::Truncated => write!(f, "truncated record"),
            Corruption::BadMagic => write!(f, "bad magic bytes"),
            Corruption::WrongVersion(v) => write!(f, "unsupported format version {v}"),
            Corruption::BadChecksum => write!(f, "payload checksum mismatch"),
        }
    }
}

/// Frames a payload into a record file image.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a record file image and returns the payload slice.
///
/// # Errors
///
/// Returns the [`Corruption`] class describing the first failed check.
pub fn decode_record(bytes: &[u8]) -> Result<&[u8], Corruption> {
    if bytes.len() < HEADER_LEN {
        return Err(Corruption::Truncated);
    }
    if bytes[0..8] != MAGIC {
        return Err(Corruption::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(Corruption::WrongVersion(version));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let Ok(len) = usize::try_from(len) else {
        return Err(Corruption::Truncated);
    };
    // Trailing junk beyond the declared payload is as suspect as a
    // short file: the frame no longer matches what was written.
    if bytes.len() != HEADER_LEN + len {
        return Err(Corruption::Truncated);
    }
    let payload = &bytes[HEADER_LEN..];
    let stored = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    if checksum64(payload) != stored {
        return Err(Corruption::BadChecksum);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for payload in [&b""[..], &b"x"[..], &[0u8; 1000][..]] {
            let frame = encode_record(payload);
            assert_eq!(decode_record(&frame).unwrap(), payload);
        }
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let frame = encode_record(b"hello, record");
        for cut in 0..frame.len() {
            let err = decode_record(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, Corruption::Truncated | Corruption::BadChecksum),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut frame = encode_record(b"payload");
        frame[0] ^= 0xFF;
        assert_eq!(decode_record(&frame), Err(Corruption::BadMagic));
    }

    #[test]
    fn wrong_version_detected() {
        let mut frame = encode_record(b"payload");
        frame[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(decode_record(&frame), Err(Corruption::WrongVersion(99)));
    }

    #[test]
    fn payload_flip_detected() {
        let mut frame = encode_record(b"payload");
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert_eq!(decode_record(&frame), Err(Corruption::BadChecksum));
    }

    #[test]
    fn trailing_junk_detected() {
        let mut frame = encode_record(b"payload");
        frame.push(0);
        assert_eq!(decode_record(&frame), Err(Corruption::Truncated));
    }
}
