//! Content-addressed on-disk artifact store for ensemble outputs.
//!
//! The expensive artifacts of a case-study run — per-realization
//! inundation outcomes, shallow-water surge envelopes, flood-pattern
//! histograms — are pure functions of their inputs. This crate gives
//! them a durable home keyed by a *stable* content hash of those
//! inputs, so re-running a sweep recomputes only what is missing:
//!
//! - [`StableHasher`] / [`Digest`]: pinned, portable 128-bit FNV-1a
//!   hashing over typed, canonical byte encodings (never
//!   `std::hash`, whose output may change between Rust releases);
//! - [`mod@format`]: a versioned binary record frame with a per-record
//!   checksum, so torn or tampered files are *classified*, not
//!   trusted;
//! - [`Store`]: atomic temp-file-then-rename writes (with dir fsync)
//!   and validate-or-evict reads, bounded transient-I/O retries, an
//!   orphan sweep for crashed writers' staging files, and an
//!   [`Store::fsck`] walk — reporting hit/miss/corrupt/evict/retry
//!   counters through [`ct_obs`];
//! - [`mod@segment`]: the **packed** layout
//!   ([`Store::open_packed`]) — records append to segment logs with
//!   group fsyncs and are served by positioned reads off an in-memory
//!   index, for put/get throughput at sequential-I/O speed;
//! - [`mod@faults`]: a deterministic failpoint registry
//!   (`CT_FAULTS=site:nth:kind`) so every crash path above is
//!   testable on demand.
//!
//! Since the serving tier landed, the *pipeline* is written against
//! the [`StoreBackend`] trait rather than [`Store`] directly:
//!
//! - [`StoreBackend`]: the get/put/evict/degrade contract both
//!   backends satisfy;
//! - [`RemoteStore`] + [`mod@remote`]: a zero-dependency HTTP/1.1
//!   client (and the shared keep-alive wire codec) for a store
//!   hosted by `ct serve`, drawing kept-alive sockets from the
//!   bounded [`mod@pool`] (`CT_REMOTE_POOL`);
//! - [`StoreUrl`]: `--store` argument parsing — bare path,
//!   `file://path`, or `http://host:port` — selecting the backend;
//! - [`ByteLru`]: the byte-budgeted in-memory cache the server
//!   answers hot reads from;
//! - [`ServeLock`]: the serve-side sentinel that keeps destructive
//!   `fsck` off a store while it is being served.
//!
//! Zero dependencies beyond [`ct_obs`], matching the workspace's
//! hand-rolled-serialization policy.
//!
//! # Example
//!
//! ```
//! use ct_store::{StableHasher, Store};
//!
//! let dir = std::env::temp_dir().join(format!("ct-store-doc-{}", std::process::id()));
//! let store = Store::open(&dir)?;
//! let mut h = StableHasher::new();
//! h.write_str("my-run");
//! h.write_u64(42);
//! let key = h.finish();
//!
//! assert_eq!(store.get(&key)?, None); // cold
//! store.put(&key, b"expensive result")?;
//! assert_eq!(store.get(&key)?.as_deref(), Some(&b"expensive result"[..])); // warm
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), ct_store::StoreError>(())
//! ```

pub mod faults;
pub mod format;
pub mod pool;
pub mod remote;
pub mod segment;

mod backend;
mod error;
mod hash;
mod lock;
mod lru;
mod metrics;
mod retry;
mod store;
mod url;

pub use backend::StoreBackend;
pub use error::StoreError;
pub use faults::{FaultKind, FaultRegistry, FaultSpec};
pub use format::{Corruption, FORMAT_VERSION};
pub use hash::{checksum64, Digest, StableHasher};
pub use lock::{served_by, ServeLock, SERVE_LOCK_FILE};
pub use lru::ByteLru;
pub use remote::RemoteStore;
pub use segment::PackedOptions;
pub use store::{FsckOptions, FsckReport, Store, DEFAULT_TMP_MAX_AGE};
pub use url::StoreUrl;
