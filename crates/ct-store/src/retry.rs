//! Deadline-budgeted retry of transient I/O errors, shared by the
//! local [`crate::Store`] and the HTTP [`crate::RemoteStore`] backend.
//!
//! The budget is *planned sleep*, not wall-clock time: each attempt's
//! backoff (1, 2, 4, ... ms) is charged against the budget before
//! sleeping, so retry counts stay deterministic under scheduler noise
//! — which the fault-campaign tests rely on.

use std::sync::OnceLock;
use std::time::Duration;

/// The per-operation backoff budget, in milliseconds of planned
/// sleep, that a store operation may spend absorbing transient I/O
/// errors before surfacing them (configurable via
/// `CT_STORE_RETRY_BUDGET_MS`; default 3, which admits exactly two
/// retries of the 1, 2, 4, ... ms backoff schedule).
pub(crate) fn budget_ms() -> u64 {
    static BUDGET: OnceLock<u64> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("CT_STORE_RETRY_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3)
    })
}

/// The error classes worth retrying on a local disk: scheduler noise
/// and timeouts. Disk-full, permissions, and corruption are not
/// transient — retrying them only delays the caller's degradation
/// path.
pub(crate) fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
    )
}

/// The error classes worth retrying over the wire: everything local
/// disks retry, plus the connection-lifecycle failures a restarting
/// or briefly-overloaded server produces.
pub(crate) fn is_remote_transient(e: &std::io::Error) -> bool {
    is_transient(e)
        || matches!(
            e.kind(),
            std::io::ErrorKind::ConnectionRefused
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::NotConnected
                | std::io::ErrorKind::UnexpectedEof
        )
}

/// Runs `op`, retrying errors classified transient by `transient`
/// with exponential backoff while the next planned sleep still fits
/// the deadline budget ([`budget_ms`]). `observe` is called with each
/// backoff's planned milliseconds *before* the sleep, so the caller
/// can count the retry and feed its latency histogram.
/// Non-transient errors and exhausted budgets surface unchanged.
pub(crate) fn retry<T>(
    transient: impl Fn(&std::io::Error) -> bool,
    mut observe: impl FnMut(u64),
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let budget = budget_ms();
    let mut spent: u64 = 0;
    let mut attempt: u32 = 0;
    loop {
        match op() {
            Err(e) if transient(&e) => {
                let wait = 1u64 << attempt.min(6);
                if spent + wait > budget {
                    return Err(e);
                }
                attempt += 1;
                spent += wait;
                observe(wait);
                std::thread::sleep(Duration::from_millis(wait));
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surfaces_non_transient_immediately() {
        let mut calls = 0;
        let r: std::io::Result<()> = retry(
            is_transient,
            |_| panic!("no retries expected"),
            || {
                calls += 1;
                Err(std::io::Error::other("permanent"))
            },
        );
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn remote_classifier_extends_local_one() {
        let refused = std::io::Error::from(std::io::ErrorKind::ConnectionRefused);
        assert!(!is_transient(&refused));
        assert!(is_remote_transient(&refused));
        let interrupted = std::io::Error::from(std::io::ErrorKind::Interrupted);
        assert!(is_remote_transient(&interrupted));
    }
}
