//! The serving lock: a flock-style PID sentinel that marks a store
//! root as owned by a live `ct serve` daemon.
//!
//! The packed layout's single-writer assumption and `fsck`'s
//! destructive modes (`--repair` compaction, `--prune`) both require
//! exclusive access; a long-running server makes "nobody else is
//! writing" a property that must be *checked*, not assumed. The lock
//! is a `serve.lock` file under the store root holding the server's
//! PID, created with `create_new` (atomic on every platform) and
//! removed on drop. A crashed server leaves the file behind; the next
//! acquirer (or fsck) reads the PID, sees the process is gone, and
//! treats the lock as stale — so a `kill -9` never bricks a store.

use crate::error::StoreError;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Name of the sentinel file under the store root.
pub const SERVE_LOCK_FILE: &str = "serve.lock";

/// An acquired serving lock; releases (removes the sentinel) on drop.
#[derive(Debug)]
pub struct ServeLock {
    path: PathBuf,
}

/// The PID recorded in `root`'s sentinel, if the file exists and
/// parses. An unreadable or garbled sentinel reads as `None` — it
/// cannot name a live owner, so it is treated as stale.
fn recorded_pid(root: &Path) -> Option<u32> {
    let raw = fs::read_to_string(root.join(SERVE_LOCK_FILE)).ok()?;
    raw.trim().parse().ok()
}

/// Whether `pid` names a live process. Uses `/proc` where it exists;
/// on systems without it the answer is a conservative `true`, so a
/// sentinel is never treated as stale on evidence we cannot check.
fn process_alive(pid: u32) -> bool {
    if !Path::new("/proc").is_dir() {
        return true;
    }
    Path::new(&format!("/proc/{pid}")).exists()
}

/// The PID of the live process serving `root`, if any: the sentinel
/// exists and its recorded PID is alive. Used by [`crate::Store::fsck`]
/// to refuse destructive maintenance on a served store.
pub fn served_by(root: &Path) -> Option<u32> {
    recorded_pid(root).filter(|&pid| process_alive(pid))
}

impl ServeLock {
    /// Takes the serving lock on `root`, writing this process's PID
    /// into the sentinel. A sentinel naming a live process is a
    /// loud error; a stale one (dead PID, or unparseable residue) is
    /// removed and re-acquired.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when another live process holds the
    /// lock, or when the sentinel cannot be created.
    pub fn acquire(root: &Path) -> Result<Self, StoreError> {
        let path = root.join(SERVE_LOCK_FILE);
        // Two rounds: one steal of a stale sentinel, then surrender.
        // A loop could livelock against another acquirer; two
        // acquirers racing for one stale lock resolves in two rounds.
        for _ in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let write = f
                        .write_all(std::process::id().to_string().as_bytes())
                        .and_then(|()| f.sync_all());
                    if let Err(e) = write {
                        let _ = fs::remove_file(&path);
                        return Err(StoreError::io(&path, &e));
                    }
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if let Some(pid) = served_by(root) {
                        let e = std::io::Error::other(format!(
                            "store is already being served by pid {pid}; \
                             stop that server (or remove a stale {SERVE_LOCK_FILE}) first"
                        ));
                        return Err(StoreError::io(&path, &e));
                    }
                    // Stale: the recorded owner is gone. Remove and retry.
                    let _ = fs::remove_file(&path);
                }
                Err(e) => return Err(StoreError::io(&path, &e)),
            }
        }
        let e = std::io::Error::other("lost the race for the serve lock twice; try again");
        Err(StoreError::io(&path, &e))
    }

    /// The sentinel's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ServeLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ct-lock-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_release_cycle() {
        let root = scratch("cycle");
        let lock = ServeLock::acquire(&root).unwrap();
        assert_eq!(served_by(&root), Some(std::process::id()));
        drop(lock);
        assert_eq!(served_by(&root), None);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn second_acquire_fails_loudly_while_held() {
        let root = scratch("held");
        let _lock = ServeLock::acquire(&root).unwrap();
        let err = ServeLock::acquire(&root).unwrap_err();
        assert!(err.to_string().contains("already being served"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stale_sentinel_is_stolen() {
        let root = scratch("stale");
        // PID u32::MAX is above every kernel's default pid_max.
        fs::write(root.join(SERVE_LOCK_FILE), u32::MAX.to_string()).unwrap();
        let lock = ServeLock::acquire(&root).unwrap();
        assert_eq!(served_by(&root), Some(std::process::id()));
        drop(lock);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn garbled_sentinel_reads_as_stale() {
        let root = scratch("garbled");
        fs::write(root.join(SERVE_LOCK_FILE), "not a pid").unwrap();
        assert_eq!(served_by(&root), None);
        let _lock = ServeLock::acquire(&root).unwrap();
        fs::remove_dir_all(&root).ok();
    }
}
