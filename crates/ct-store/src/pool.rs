//! A bounded pool of kept-alive client connections.
//!
//! [`crate::RemoteStore`] used to dial a fresh TCP connection per
//! operation to match the PR-7 server's one-request-per-connection
//! contract. With keep-alive on both sides, the dial (and the slow
//! start that follows it) is pure waste — so clients check sockets
//! out of a [`ConnPool`], use them for one exchange, and check them
//! back in while the server keeps the other end open.
//!
//! The pool holds at most `CT_REMOTE_POOL` idle sockets (default
//! [`DEFAULT_POOL_CAP`]); more concurrent checkouts simply dial, and
//! surplus checkins are dropped on the floor — the bound caps idle
//! sockets, never concurrency. Every checkout health-checks the
//! candidate with a nonblocking 1-byte peek: a socket the server
//! already closed (idle timeout, max-requests bound, restart) or
//! that has unsolicited bytes buffered is *retired* and the next
//! candidate tried, so a stale socket costs a peek, not a failed
//! operation. The race that remains — the server closing after the
//! peek but before the request — surfaces as a connection-lifecycle
//! error, which the caller's retry budget absorbs with a fresh dial.
//!
//! Counters on the owning store's sink: `store.remote.pool.hits`
//! (healthy reuse), `store.remote.pool.dials` (fresh connections),
//! `store.remote.pool.retired` (stale sockets dropped at checkout).

use crate::metrics::MetricsSink;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

/// Idle sockets kept per pool when `CT_REMOTE_POOL` is unset.
pub const DEFAULT_POOL_CAP: usize = 8;

const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
/// Generous because a cold `/probe` may build a whole case study.
const IO_TIMEOUT: Duration = Duration::from_secs(60);

/// The idle-socket cap: `CT_REMOTE_POOL`, default
/// [`DEFAULT_POOL_CAP`]; zero disables pooling (every exchange
/// dials, nothing is kept).
fn pool_cap() -> usize {
    static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("CT_REMOTE_POOL")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_POOL_CAP)
    })
}

/// A bounded pool of idle kept-alive connections to one authority.
/// Shared by every clone of the owning [`crate::RemoteStore`].
#[derive(Debug)]
pub struct ConnPool {
    authority: String,
    cap: usize,
    idle: Mutex<Vec<TcpStream>>,
    sink: MetricsSink,
}

impl ConnPool {
    /// An empty pool for `authority`, counting on `sink`, capped by
    /// `CT_REMOTE_POOL`.
    pub(crate) fn new(authority: String, sink: MetricsSink) -> Self {
        Self::with_cap(authority, pool_cap(), sink)
    }

    /// An empty pool with an explicit idle cap (tests).
    pub(crate) fn with_cap(authority: String, cap: usize, sink: MetricsSink) -> Self {
        Self {
            authority,
            cap,
            idle: Mutex::new(Vec::new()),
            sink,
        }
    }

    /// A connection ready for one exchange: the freshest healthy idle
    /// socket, or a new dial once every idle candidate has been
    /// retired.
    ///
    /// # Errors
    ///
    /// Dial failures (resolution, refused, timeout) — transient by
    /// the remote classification, so callers' retry budgets apply.
    pub fn checkout(&self) -> io::Result<TcpStream> {
        loop {
            let candidate = self.idle.lock().expect("conn pool lock").pop();
            let Some(stream) = candidate else { break };
            if healthy(&stream) {
                self.sink.add(ct_obs::names::STORE_REMOTE_POOL_HITS, 1);
                return Ok(stream);
            }
            self.sink.add(ct_obs::names::STORE_REMOTE_POOL_RETIRED, 1);
        }
        self.dial()
    }

    /// Returns a socket after a clean keep-alive exchange. Dropped on
    /// the floor when the pool is at its idle cap; never call this
    /// with a socket that saw an error — broken connections must not
    /// be reused.
    pub fn checkin(&self, stream: TcpStream) {
        let mut idle = self.idle.lock().expect("conn pool lock");
        if idle.len() < self.cap {
            idle.push(stream);
        }
    }

    fn dial(&self) -> io::Result<TcpStream> {
        self.sink.add(ct_obs::names::STORE_REMOTE_POOL_DIALS, 1);
        let addr = self
            .authority
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("store authority resolved to no address"))?;
        let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        Ok(stream)
    }
}

/// Whether an idle socket is still usable: a nonblocking 1-byte peek
/// must say "no data yet" (`WouldBlock`). EOF means the server
/// closed it, ready bytes mean a desynchronized exchange left
/// garbage behind, and any other error means a dead socket — all
/// three retire the connection.
fn healthy(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let idle_and_open = matches!(
        stream.peek(&mut probe),
        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock
    );
    idle_and_open && stream.set_nonblocking(false).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::Arc;

    fn local_pool(authority: String, cap: usize) -> (ConnPool, Arc<ct_obs::Registry>) {
        let reg = Arc::new(ct_obs::Registry::new());
        let pool = ConnPool::with_cap(authority, cap, MetricsSink::Local(Arc::clone(&reg)));
        (pool, reg)
    }

    #[test]
    fn checkout_reuses_and_caps_idle_sockets() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let authority = listener.local_addr().unwrap().to_string();
        // Keep the server ends alive so the sockets stay healthy.
        let mut server_ends = Vec::new();
        let (pool, reg) = local_pool(authority, 2);

        let a = pool.checkout().unwrap();
        server_ends.push(listener.accept().unwrap().0);
        let b = pool.checkout().unwrap();
        server_ends.push(listener.accept().unwrap().0);
        let c = pool.checkout().unwrap();
        server_ends.push(listener.accept().unwrap().0);
        pool.checkin(a);
        pool.checkin(b);
        pool.checkin(c); // over the cap of 2: dropped

        let _r1 = pool.checkout().unwrap();
        let _r2 = pool.checkout().unwrap();
        let _d = pool.checkout().unwrap(); // pool drained: dials
        server_ends.push(listener.accept().unwrap().0);

        let snap = reg.snapshot();
        assert_eq!(
            snap.counter(ct_obs::names::STORE_REMOTE_POOL_DIALS),
            Some(4)
        );
        assert_eq!(snap.counter(ct_obs::names::STORE_REMOTE_POOL_HITS), Some(2));
        assert_eq!(
            snap.counter(ct_obs::names::STORE_REMOTE_POOL_RETIRED)
                .unwrap_or(0),
            0
        );
    }

    #[test]
    fn stale_sockets_are_retired_at_checkout() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let authority = listener.local_addr().unwrap().to_string();
        let (pool, reg) = local_pool(authority, 4);

        // A socket the server has closed (EOF on peek).
        let closed = pool.checkout().unwrap();
        drop(listener.accept().unwrap().0);
        pool.checkin(closed);
        // A socket with unsolicited bytes buffered.
        let noisy = pool.checkout().unwrap();
        let (mut server_end, _) = listener.accept().unwrap();
        server_end.write_all(b"surprise").unwrap();
        // Give loopback a moment to deliver the surprise.
        std::thread::sleep(Duration::from_millis(20));
        pool.checkin(noisy);

        // Both idle candidates are retired; the checkout dials fresh.
        let _fresh = pool.checkout().unwrap();
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter(ct_obs::names::STORE_REMOTE_POOL_RETIRED),
            Some(2)
        );
        assert_eq!(
            snap.counter(ct_obs::names::STORE_REMOTE_POOL_DIALS),
            Some(3)
        );
        assert_eq!(
            snap.counter(ct_obs::names::STORE_REMOTE_POOL_HITS)
                .unwrap_or(0),
            0
        );
    }
}
