//! Store-level errors.
//!
//! Only *environmental* failures (I/O) are errors. A corrupt record is
//! not an error: it is a cache state the store resolves itself by
//! evicting the record and reporting a miss, so callers degrade to
//! recompute-and-rewrite instead of failing the run.

use std::fmt;

/// Errors surfaced by the artifact store.
///
/// The underlying I/O error is stringified so the type stays cloneable
/// and comparable, matching the error-type policy of the rest of the
/// workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Reading or writing under the store root failed.
    Io {
        /// Path of the file being accessed.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
    /// A remote server refused the request itself with a 4xx status
    /// (other than a 404 miss, which is a cache state, not an
    /// error). Permanent: retrying the identical request would
    /// repeat the refusal, so the retry budget is never spent on it.
    RemotePermanent {
        /// The full `http://authority/target` that was refused.
        url: String,
        /// The 4xx status the server answered with.
        status: u16,
        /// The server's explanation (the response body, trimmed).
        message: String,
    },
}

impl StoreError {
    pub(crate) fn io(path: &std::path::Path, e: &std::io::Error) -> Self {
        StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "artifact store '{path}': {message}"),
            StoreError::RemotePermanent {
                url,
                status,
                message,
            } => {
                write!(f, "remote store refused '{url}' with {status}: {message}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_path_and_cause() {
        let e = StoreError::Io {
            path: "/tmp/store/objects/ab".into(),
            message: "permission denied".into(),
        };
        assert!(e.to_string().contains("/tmp/store/objects/ab"));
        assert!(e.to_string().contains("permission denied"));
    }
}
