//! A byte-budgeted LRU cache for serving stores.
//!
//! `ct serve` answers most object reads from memory; this cache keeps
//! that working set bounded so a long-lived server cannot grow without
//! limit. Capacity is measured in *payload bytes*, not entries —
//! records range from hundreds of bytes (a realization) to hundreds of
//! kilobytes (a histogram), so an entry count would bound nothing.
//!
//! Eviction contract (documented in DESIGN.md and relied on by the
//! server): inserting an entry evicts least-recently-*used* entries
//! until the new total fits the budget; a payload larger than the
//! whole budget is simply not cached (the backing store still serves
//! it); `get` refreshes recency; `remove` is immediate (the server
//! calls it on evict/invalidate so the cache can never resurrect a
//! deleted record). Hits, misses, and evictions are counted as
//! `store.lru.*`.

use crate::hash::Digest;
use crate::metrics::MetricsSink;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct LruState {
    /// key → (recency tick, payload).
    entries: HashMap<Digest, (u64, Arc<Vec<u8>>)>,
    /// recency tick → key; the smallest tick is the eviction victim.
    order: BTreeMap<u64, Digest>,
    /// Total payload bytes currently held.
    bytes: u64,
    /// Monotonic recency clock.
    tick: u64,
}

/// A thread-safe byte-budgeted LRU of record payloads.
#[derive(Debug)]
pub struct ByteLru {
    state: Mutex<LruState>,
    budget: u64,
    sink: MetricsSink,
}

impl ByteLru {
    /// A cache bounded to `budget` payload bytes, counting to the
    /// global [`ct_obs`] registry.
    pub fn new(budget: u64) -> Self {
        Self {
            state: Mutex::new(LruState::default()),
            budget,
            sink: MetricsSink::Global,
        }
    }

    /// Like [`ByteLru::new`], counting to a caller-owned registry —
    /// for tests that assert exact hit/miss/eviction counts.
    pub fn with_registry(budget: u64, registry: Arc<ct_obs::Registry>) -> Self {
        Self {
            state: Mutex::new(LruState::default()),
            budget,
            sink: MetricsSink::Local(registry),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Payload bytes currently cached.
    pub fn bytes(&self) -> u64 {
        self.state.lock().expect("lru lock").bytes
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.state.lock().expect("lru lock").entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached payload for `key`, refreshing its recency.
    pub fn get(&self, key: &Digest) -> Option<Arc<Vec<u8>>> {
        let mut s = self.state.lock().expect("lru lock");
        s.tick += 1;
        let fresh = s.tick;
        let Some((tick, payload)) = s.entries.get_mut(key) else {
            self.sink.add(ct_obs::names::STORE_LRU_MISSES, 1);
            return None;
        };
        let stale = std::mem::replace(tick, fresh);
        let payload = Arc::clone(payload);
        s.order.remove(&stale);
        s.order.insert(fresh, *key);
        self.sink.add(ct_obs::names::STORE_LRU_HITS, 1);
        Some(payload)
    }

    /// Caches `payload` under `key` (replacing any previous entry),
    /// then evicts least-recently-used entries until the total fits
    /// the budget. A payload larger than the whole budget is not
    /// cached at all.
    pub fn put(&self, key: &Digest, payload: Vec<u8>) {
        let len = payload.len() as u64;
        let mut s = self.state.lock().expect("lru lock");
        Self::remove_locked(&mut s, key);
        if len > self.budget {
            return;
        }
        s.tick += 1;
        let fresh = s.tick;
        s.entries.insert(*key, (fresh, Arc::new(payload)));
        s.order.insert(fresh, *key);
        s.bytes += len;
        let mut evicted = 0u64;
        while s.bytes > self.budget {
            let victim = *s
                .order
                .iter()
                .next()
                .expect("over budget implies an entry")
                .1;
            // The just-inserted entry has the freshest tick, so a
            // victim is always an *older* entry; the cache never
            // thrashes the record it was asked to hold.
            debug_assert_ne!(victim, *key);
            Self::remove_locked(&mut s, &victim);
            evicted += 1;
        }
        if evicted > 0 {
            self.sink.add(ct_obs::names::STORE_LRU_EVICTIONS, evicted);
        }
    }

    /// Drops `key` from the cache (not counted as an LRU eviction:
    /// the caller deleted the record, the budget did not).
    pub fn remove(&self, key: &Digest) {
        let mut s = self.state.lock().expect("lru lock");
        Self::remove_locked(&mut s, key);
    }

    fn remove_locked(s: &mut LruState, key: &Digest) {
        if let Some((tick, payload)) = s.entries.remove(key) {
            s.order.remove(&tick);
            s.bytes -= payload.len() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::StableHasher;

    fn key(n: u64) -> Digest {
        let mut h = StableHasher::new();
        h.write_u64(n);
        h.finish()
    }

    fn counters(reg: &ct_obs::Registry) -> (u64, u64, u64) {
        let snap = reg.snapshot();
        (
            snap.counter(ct_obs::names::STORE_LRU_HITS).unwrap_or(0),
            snap.counter(ct_obs::names::STORE_LRU_MISSES).unwrap_or(0),
            snap.counter(ct_obs::names::STORE_LRU_EVICTIONS)
                .unwrap_or(0),
        )
    }

    #[test]
    fn evicts_least_recently_used_to_fit_budget() {
        let reg = Arc::new(ct_obs::Registry::new());
        let lru = ByteLru::with_registry(10, Arc::clone(&reg));
        lru.put(&key(1), vec![0; 4]);
        lru.put(&key(2), vec![0; 4]);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(lru.get(&key(1)).is_some());
        lru.put(&key(3), vec![0; 4]);
        assert_eq!(lru.get(&key(2)), None);
        assert!(lru.get(&key(1)).is_some());
        assert!(lru.get(&key(3)).is_some());
        assert_eq!(lru.bytes(), 8);
        assert_eq!(counters(&reg), (3, 1, 1));
    }

    #[test]
    fn oversized_payloads_are_not_cached() {
        let lru = ByteLru::new(8);
        lru.put(&key(1), vec![0; 9]);
        assert!(lru.is_empty());
        // And an oversized re-put of a cached key still drops it.
        lru.put(&key(2), vec![0; 4]);
        lru.put(&key(2), vec![0; 64]);
        assert!(lru.is_empty());
    }

    #[test]
    fn replacement_updates_byte_accounting() {
        let lru = ByteLru::new(100);
        lru.put(&key(1), vec![0; 30]);
        lru.put(&key(1), vec![0; 7]);
        assert_eq!(lru.bytes(), 7);
        assert_eq!(lru.len(), 1);
        lru.remove(&key(1));
        assert_eq!(lru.bytes(), 0);
        assert!(lru.is_empty());
    }

    #[test]
    fn one_giant_eviction_sweep_counts_every_victim() {
        let reg = Arc::new(ct_obs::Registry::new());
        let lru = ByteLru::with_registry(10, Arc::clone(&reg));
        for n in 0..5 {
            lru.put(&key(n), vec![0; 2]);
        }
        lru.put(&key(9), vec![0; 10]);
        assert_eq!(lru.len(), 1);
        assert!(lru.get(&key(9)).is_some());
        assert_eq!(counters(&reg).2, 5);
    }
}
