//! Where a store backend reports its metrics: the process-global
//! [`ct_obs`] registry by default, or a caller-owned one for tests
//! that need exact counter assertions without racing other threads.

use std::sync::Arc;

/// A backend's metrics destination. Cheap to clone.
#[derive(Debug, Clone)]
pub(crate) enum MetricsSink {
    /// The process-global [`ct_obs`] registry (the default).
    Global,
    /// A caller-owned registry.
    Local(Arc<ct_obs::Registry>),
}

impl MetricsSink {
    pub(crate) fn add(&self, name: &str, delta: u64) {
        match self {
            MetricsSink::Global => ct_obs::add(name, delta),
            MetricsSink::Local(r) => r.counter(name).add(delta),
        }
    }

    pub(crate) fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        let h = match self {
            MetricsSink::Global => ct_obs::histogram(name, bounds),
            MetricsSink::Local(r) => r.histogram(name, bounds),
        };
        h.observe(value);
    }
}
