//! Stable content hashing for artifact addresses.
//!
//! The hasher must be *portable and pinned*: a digest computed today,
//! on any platform, must match the digest computed by every future
//! build, or the store silently loses every cached artifact. Rust's
//! `std::hash::Hasher` explicitly reserves the right to change between
//! releases, so the store hand-rolls 128-bit FNV-1a instead. Inputs
//! are fed through typed writers that fix the byte encoding
//! (little-endian, `f64::to_bits`, length-prefixed strings) so the
//! digest is a function of the *values*, not of memory layout.

use std::fmt;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit content address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 16]);

impl Digest {
    /// Lower-case hex rendering (32 chars), used for on-disk paths.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            use fmt::Write;
            write!(s, "{b:02x}").expect("writing to a String cannot fail");
        }
        s
    }

    /// Parses the [`Digest::to_hex`] form back into a digest: exactly
    /// 32 lower-case hex characters. The inverse the serving tier
    /// needs to turn a `/objects/<hex>` path back into an address;
    /// anything else — wrong length, upper case, non-hex — is `None`,
    /// so a malformed request can never alias a real record.
    pub fn from_hex(s: &str) -> Option<Digest> {
        let bytes = s.as_bytes();
        if bytes.len() != 32 {
            return None;
        }
        let nibble = |b: u8| match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            _ => None,
        };
        let mut out = [0u8; 16];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            out[i] = nibble(pair[0])? << 4 | nibble(pair[1])?;
        }
        Some(Digest(out))
    }

    /// Derives a child address: the digest of `(self, label)`. Used to
    /// key individual records under a run-level base address.
    pub fn derive(&self, label: &str) -> Digest {
        let mut h = StableHasher::new();
        h.update(&self.0);
        h.write_str(label);
        h.finish()
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// 128-bit FNV-1a over a caller-defined canonical byte stream.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self {
            state: FNV128_OFFSET,
        }
    }

    /// Feeds raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.update(&[v]);
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64` so 32- and 64-bit platforms
    /// agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Feeds an `f64` by bit pattern: every distinct value (including
    /// `-0.0` vs `0.0` and NaN payloads) gets a distinct encoding.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a slice of `f64` with a length prefix.
    pub fn write_f64_slice(&mut self, vs: &[f64]) {
        self.write_usize(vs.len());
        for &v in vs {
            self.write_f64(v);
        }
    }

    /// Feeds a string, length-prefixed so concatenations cannot
    /// collide (`"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.update(s.as_bytes());
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> Digest {
        Digest(self.state.to_le_bytes())
    }
}

/// FNV-1a 64 over a byte slice — the per-record payload checksum.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut state = OFFSET;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(PRIME);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_across_runs() {
        // Pinned vector: if this digest ever changes, every existing
        // store on disk is silently invalidated — treat as a breaking
        // format change, not a test to update casually.
        let mut h = StableHasher::new();
        h.write_str("ct-store");
        h.write_u64(42);
        h.write_f64(0.5);
        assert_eq!(h.finish().to_hex(), "d1c2779c42ccfa8c59028e3d489f170c");
    }

    #[test]
    fn typed_writers_disambiguate() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut z = StableHasher::new();
        z.write_f64(0.0);
        let mut nz = StableHasher::new();
        nz.write_f64(-0.0);
        assert_ne!(z.finish(), nz.finish());
    }

    #[test]
    fn derive_depends_on_base_and_label() {
        let mut h = StableHasher::new();
        h.write_str("base");
        let base = h.finish();
        assert_ne!(base.derive("a"), base.derive("b"));
        let mut h2 = StableHasher::new();
        h2.write_str("base2");
        assert_ne!(base.derive("a"), h2.finish().derive("a"));
    }

    #[test]
    fn hex_and_display_agree() {
        let d = StableHasher::new().finish();
        assert_eq!(d.to_hex().len(), 32);
        assert_eq!(d.to_string(), d.to_hex());
    }

    #[test]
    fn from_hex_inverts_to_hex_and_rejects_noise() {
        let mut h = StableHasher::new();
        h.write_str("round-trip");
        let d = h.finish();
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        for bad in [
            "",
            "00",
            "zz028e3d489f170cd1c2779c42ccfa8c",
            "D1C2779C42CCFA8C59028E3D489F170C",
            "d1c2779c42ccfa8c59028e3d489f170c0", // 33 chars
        ] {
            assert_eq!(Digest::from_hex(bad), None, "input {bad:?}");
        }
    }

    #[test]
    fn checksum_detects_any_single_bit_flip() {
        let payload = b"the quick brown fox";
        let base = checksum64(payload);
        for i in 0..payload.len() {
            for bit in 0..8 {
                let mut flipped = payload.to_vec();
                flipped[i] ^= 1 << bit;
                assert_ne!(checksum64(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
