//! `--store <url>`: how a CLI invocation names a store backend.
//!
//! Three forms are accepted, and anything else is rejected loudly
//! (a typo'd scheme must never be mistaken for a relative path):
//!
//! - `path/to/store` — a local store root (the historical form);
//! - `file://path/to/store` — the same, explicitly;
//! - `http://host:port` — the remote backend, served by `ct serve`.
//!
//! `Display` round-trips through `FromStr` (pinned by
//! `tests/cli_roundtrip.rs`), so a parsed URL can be re-rendered into
//! a child process's argv unchanged.

use crate::backend::StoreBackend;
use crate::error::StoreError;
use crate::remote::RemoteStore;
use crate::store::Store;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// A parsed `--store` argument: a local root or a server address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreUrl {
    /// A local store root (bare path or `file://` form).
    Local(PathBuf),
    /// A `ct serve` endpoint: the `host:port` of `http://host:port`.
    Http {
        /// The `host:port` to connect to.
        authority: String,
    },
}

impl StoreUrl {
    /// Opens the backend this URL names. `packed` selects the packed
    /// segment layout for a fresh *local* root; an existing root
    /// auto-detects its layout. Remote stores reject `packed`: the
    /// layout is the serving side's choice (`ct serve --packed`), not
    /// the client's.
    ///
    /// # Errors
    ///
    /// Local open failures ([`Store::open`]/[`Store::open_packed`]),
    /// or `packed` against an `http://` URL. Connecting is lazy — a
    /// down server surfaces on the first operation, which degrades to
    /// compute-without-cache like any other store failure.
    pub fn open(&self, packed: bool) -> Result<Arc<dyn StoreBackend>, StoreError> {
        match self {
            StoreUrl::Local(root) => {
                let store = if packed {
                    Store::open_packed(root)?
                } else {
                    Store::open(root)?
                };
                Ok(Arc::new(store))
            }
            StoreUrl::Http { authority } => {
                if packed {
                    let e = std::io::Error::other(
                        "--packed chooses the on-disk layout, which belongs to the \
                         server; pass it to `ct serve` instead of the http client",
                    );
                    return Err(StoreError::io(std::path::Path::new(&self.to_string()), &e));
                }
                Ok(Arc::new(RemoteStore::connect(authority.clone())))
            }
        }
    }

    /// The local root, when this URL names one.
    pub fn local_root(&self) -> Option<&std::path::Path> {
        match self {
            StoreUrl::Local(root) => Some(root),
            StoreUrl::Http { .. } => None,
        }
    }
}

/// Validates an `http://` authority: non-empty `host:port` with a
/// parseable port and no path component.
fn parse_authority(rest: &str) -> Result<String, String> {
    let authority = rest.strip_suffix('/').unwrap_or(rest);
    if authority.is_empty() {
        return Err("http store url needs a host:port (e.g. http://127.0.0.1:7171)".into());
    }
    if authority.contains('/') {
        return Err(format!(
            "http store url must be just http://host:port, got a path in '{authority}'"
        ));
    }
    let Some((host, port)) = authority.rsplit_once(':') else {
        return Err(format!(
            "http store url '{authority}' is missing its port (e.g. http://{authority}:7171)"
        ));
    };
    if host.is_empty() {
        return Err(format!("http store url '{authority}' is missing its host"));
    }
    if port.parse::<u16>().is_err() {
        return Err(format!(
            "http store url port '{port}' is not a valid port number"
        ));
    }
    Ok(authority.to_string())
}

impl std::str::FromStr for StoreUrl {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err("store url is empty".into());
        }
        if let Some(rest) = s.strip_prefix("http://") {
            return Ok(StoreUrl::Http {
                authority: parse_authority(rest)?,
            });
        }
        if let Some(rest) = s.strip_prefix("file://") {
            if rest.is_empty() {
                return Err("file:// store url names no path".into());
            }
            return Ok(StoreUrl::Local(PathBuf::from(rest)));
        }
        // Any other scheme is a loud error, not a weird relative path:
        // `https://host` silently creating a directory named
        // `https:/host` would be a debugging session, not a store.
        if let Some((scheme, _)) = s.split_once("://") {
            return Err(format!(
                "unsupported store url scheme '{scheme}://' \
                 (supported: a bare path, file://path, http://host:port)"
            ));
        }
        Ok(StoreUrl::Local(PathBuf::from(s)))
    }
}

impl fmt::Display for StoreUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreUrl::Local(root) => write!(f, "{}", root.display()),
            StoreUrl::Http { authority } => write!(f, "http://{authority}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_forms() {
        assert_eq!(
            "relative/dir".parse::<StoreUrl>().unwrap(),
            StoreUrl::Local(PathBuf::from("relative/dir"))
        );
        assert_eq!(
            "file:///abs/dir".parse::<StoreUrl>().unwrap(),
            StoreUrl::Local(PathBuf::from("/abs/dir"))
        );
        assert_eq!(
            "http://127.0.0.1:7171".parse::<StoreUrl>().unwrap(),
            StoreUrl::Http {
                authority: "127.0.0.1:7171".into()
            }
        );
        // A trailing slash on the authority is tolerated on input...
        assert_eq!(
            "http://[::1]:80/".parse::<StoreUrl>().unwrap(),
            StoreUrl::Http {
                authority: "[::1]:80".into()
            }
        );
    }

    #[test]
    fn rejects_unknown_schemes_and_malformed_authorities() {
        for (input, fragment) in [
            ("https://h:1", "unsupported store url scheme 'https://'"),
            ("ftp://h:1", "unsupported store url scheme 'ftp://'"),
            ("http://", "needs a host:port"),
            ("http://hostonly", "missing its port"),
            ("http://:7171", "missing its host"),
            ("http://h:notaport", "not a valid port number"),
            ("http://h:1/objects", "got a path"),
            ("", "store url is empty"),
            ("file://", "names no path"),
        ] {
            let err = input.parse::<StoreUrl>().unwrap_err();
            assert!(
                err.contains(fragment),
                "input '{input}': error '{err}' should mention '{fragment}'"
            );
        }
    }

    #[test]
    fn display_round_trips() {
        for input in ["some/dir", "/abs/dir", "http://127.0.0.1:7171", "file:///x"] {
            let url: StoreUrl = input.parse().unwrap();
            let reparsed: StoreUrl = url.to_string().parse().unwrap();
            assert_eq!(url, reparsed, "round-trip of '{input}'");
        }
    }

    #[test]
    fn packed_is_a_server_side_choice() {
        let url: StoreUrl = "http://127.0.0.1:1".parse().unwrap();
        let err = url.open(true).unwrap_err();
        assert!(err.to_string().contains("ct serve"));
    }
}
