//! Deterministic failpoint layer for crash-path testing.
//!
//! The store's clean path is exercised constantly; its *failure* paths
//! — ENOSPC mid-write, a rename that never lands, a read that tears —
//! are exactly the ones the compound-threats argument depends on and
//! exactly the ones ordinary tests never reach. This module gives
//! every fragile I/O operation a named **site** that tests and the CLI
//! can arm to inject a fault deterministically:
//!
//! ```text
//! CT_FAULTS=site:nth:kind[:limit][,site:nth:kind[:limit]...]
//! ```
//!
//! - `site` — one of [`sites::ALL`] (e.g. `store.put.write`);
//! - `nth` — fire on every `nth` hit of the site (1 = every hit);
//! - `kind` — `io` (transient I/O error, retryable), `enospc`
//!   (disk full, not retryable), `corrupt` (payload mangled in
//!   flight), `torn` (a partial write followed by an error);
//! - `limit` — optional cap on total firings (absent or 0 = no cap).
//!
//! Arming and firing are counted through [`ct_obs`] (`faults.armed`,
//! `faults.fired`), so a fault campaign's coverage is visible in the
//! same `--metrics` snapshot as the `store.degraded` recoveries it
//! provokes. The process-global registry arms itself from `CT_FAULTS`
//! on first use; tests needing exact counts use a private
//! [`FaultRegistry`] wired into a store via
//! [`Store::open_with_faults`](crate::Store::open_with_faults).
//!
//! Everything here is deliberately boring std: a mutexed `Vec` of
//! armed sites. Failpoints sit on I/O paths whose cost is dominated by
//! the filesystem, so a registry lookup per operation is noise.

use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex, OnceLock};

/// The canonical failpoint site names.
pub mod sites {
    /// Writing + syncing the staged temp file inside `Store::put`.
    pub const STORE_PUT_WRITE: &str = "store.put.write";
    /// The rename that publishes a staged record.
    pub const STORE_PUT_RENAME: &str = "store.put.rename";
    /// The directory fsync that makes a published rename durable.
    pub const STORE_PUT_SYNC_DIR: &str = "store.put.sync_dir";
    /// Reading a record file inside `Store::get`.
    pub const STORE_GET_READ: &str = "store.get.read";
    /// Removing a record (evictions, invalidations, corrupt cleanup).
    pub const STORE_EVICT_REMOVE: &str = "store.evict.remove";
    /// The lookup step of `ShallowWaterSolver::run_cached`.
    pub const HYDRO_CACHE_GET: &str = "hydro.cache.get";
    /// The write-back step of `ShallowWaterSolver::run_cached`.
    pub const HYDRO_CACHE_PUT: &str = "hydro.cache.put";
    /// Appending an entry to the active segment of a packed store.
    pub const SEGMENT_APPEND: &str = "segment.append";
    /// The group fsync that makes a batch of appends durable.
    pub const SEGMENT_SYNC: &str = "segment.sync";
    /// Writing the footer index that seals a full segment.
    pub const SEGMENT_FOOTER: &str = "segment.footer";
    /// Rewriting a segment during `fsck --repair` compaction.
    pub const SEGMENT_COMPACT: &str = "segment.compact";

    /// Every site, for docs, validation, and fault campaigns.
    pub const ALL: &[&str] = &[
        STORE_PUT_WRITE,
        STORE_PUT_RENAME,
        STORE_PUT_SYNC_DIR,
        STORE_GET_READ,
        STORE_EVICT_REMOVE,
        HYDRO_CACHE_GET,
        HYDRO_CACHE_PUT,
        SEGMENT_APPEND,
        SEGMENT_SYNC,
        SEGMENT_FOOTER,
        SEGMENT_COMPACT,
    ];
}

/// What an armed failpoint injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient I/O error (`ErrorKind::TimedOut`) — the class the
    /// store's bounded retry is allowed to absorb.
    Io,
    /// Disk full (`ErrorKind::StorageFull`) — an environmental error
    /// retrying cannot fix; callers must degrade instead.
    Enospc,
    /// The bytes crossing the site are silently mangled (one flipped
    /// byte), so the operation "succeeds" and the frame checksum has
    /// to catch it later.
    Corruption,
    /// Only a prefix of the bytes reaches the disk before the
    /// operation errors — the on-disk signature of a crash mid-write.
    PartialWrite,
}

impl FaultKind {
    /// The keyword used in `CT_FAULTS` specs.
    pub fn keyword(&self) -> &'static str {
        match self {
            FaultKind::Io => "io",
            FaultKind::Enospc => "enospc",
            FaultKind::Corruption => "corrupt",
            FaultKind::PartialWrite => "torn",
        }
    }

    /// The error an error-injecting kind produces. `Corruption` and
    /// `PartialWrite` sites that cannot express data mangling (e.g. a
    /// rename) fall back to a generic injected error.
    pub fn io_error(&self) -> std::io::Error {
        match self {
            FaultKind::Io => {
                std::io::Error::new(std::io::ErrorKind::TimedOut, "injected transient I/O fault")
            }
            FaultKind::Enospc => {
                std::io::Error::new(std::io::ErrorKind::StorageFull, "injected disk-full fault")
            }
            FaultKind::Corruption | FaultKind::PartialWrite => {
                std::io::Error::other(format!("injected {} fault", self.keyword()))
            }
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One parsed `site:nth:kind[:limit]` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The failpoint site to arm (must be in [`sites::ALL`]).
    pub site: String,
    /// Fire on every `nth` hit (≥ 1).
    pub nth: u64,
    /// What to inject when firing.
    pub kind: FaultKind,
    /// Maximum total firings; 0 = unlimited.
    pub limit: u64,
}

impl FaultSpec {
    /// A spec firing on every `nth` hit with no firing cap.
    pub fn every(site: &str, nth: u64, kind: FaultKind) -> Self {
        Self {
            site: site.to_string(),
            nth,
            kind,
            limit: 0,
        }
    }

    /// A spec that fires exactly once, on the `nth` hit.
    pub fn once(site: &str, nth: u64, kind: FaultKind) -> Self {
        Self {
            limit: 1,
            ..Self::every(site, nth, kind)
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.site, self.nth, self.kind)?;
        if self.limit != 0 {
            write!(f, ":{}", self.limit)?;
        }
        Ok(())
    }
}

/// A `CT_FAULTS` directive that failed to parse, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// The directive as typed.
    pub spec: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec '{}': {}", self.spec, self.reason)
    }
}

impl std::error::Error for FaultParseError {}

impl FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "io" => Ok(FaultKind::Io),
            "enospc" => Ok(FaultKind::Enospc),
            "corrupt" => Ok(FaultKind::Corruption),
            "torn" => Ok(FaultKind::PartialWrite),
            other => Err(format!(
                "unknown fault kind '{other}' (expected io | enospc | corrupt | torn)"
            )),
        }
    }
}

impl FromStr for FaultSpec {
    type Err = FaultParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: String| FaultParseError {
            spec: s.to_string(),
            reason,
        };
        let parts: Vec<&str> = s.split(':').collect();
        if !(3..=4).contains(&parts.len()) {
            return Err(err("expected site:nth:kind[:limit]".into()));
        }
        let site = parts[0];
        if !sites::ALL.contains(&site) {
            return Err(err(format!(
                "unknown site '{site}' (known: {})",
                sites::ALL.join(", ")
            )));
        }
        let nth: u64 = parts[1]
            .parse()
            .map_err(|_| err(format!("nth '{}' is not an integer", parts[1])))?;
        if nth == 0 {
            return Err(err("nth must be ≥ 1".into()));
        }
        let kind: FaultKind = match parts[2].parse() {
            Ok(kind) => kind,
            Err(reason) => return Err(err(reason)),
        };
        let limit: u64 = match parts.get(3) {
            None => 0,
            Some(l) => l
                .parse()
                .map_err(|_| err(format!("limit '{l}' is not an integer")))?,
        };
        Ok(FaultSpec {
            site: site.to_string(),
            nth,
            kind,
            limit,
        })
    }
}

/// Parses a full comma-separated `CT_FAULTS` plan.
///
/// # Errors
///
/// The first malformed directive, verbatim.
pub fn parse_plan(plan: &str) -> Result<Vec<FaultSpec>, FaultParseError> {
    plan.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(FaultSpec::from_str)
        .collect()
}

/// One armed failpoint plus its hit/fire history.
#[derive(Debug)]
struct ArmedFault {
    spec: FaultSpec,
    hits: u64,
    fired: u64,
}

/// Where the registry reports `faults.*` counters.
#[derive(Debug, Clone, Default)]
enum ObsSink {
    /// The process-global [`ct_obs`] registry.
    #[default]
    Global,
    /// A caller-owned registry, for exact counter assertions in tests.
    Local(Arc<ct_obs::Registry>),
}

/// A registry of armed failpoints. Stores consult one on every
/// instrumented operation ([`crate::Store`] defaults to the
/// process-global registry; tests inject their own).
#[derive(Debug, Default)]
pub struct FaultRegistry {
    armed: Mutex<Vec<ArmedFault>>,
    obs: ObsSink,
}

impl FaultRegistry {
    /// An empty registry reporting to the global [`ct_obs`] registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry reporting `faults.*` counters to `obs`.
    pub fn with_obs(obs: Arc<ct_obs::Registry>) -> Self {
        Self {
            armed: Mutex::new(Vec::new()),
            obs: ObsSink::Local(obs),
        }
    }

    fn add(&self, name: &str, delta: u64) {
        match &self.obs {
            ObsSink::Global => ct_obs::add(name, delta),
            ObsSink::Local(r) => r.counter(name).add(delta),
        }
    }

    /// Arms one failpoint (counted as `faults.armed`).
    pub fn arm(&self, spec: FaultSpec) {
        self.add(ct_obs::names::FAULTS_ARMED, 1);
        self.armed
            .lock()
            .expect("fault registry lock")
            .push(ArmedFault {
                spec,
                hits: 0,
                fired: 0,
            });
    }

    /// Parses and arms a full `CT_FAULTS`-syntax plan, returning how
    /// many directives were armed.
    ///
    /// # Errors
    ///
    /// The first malformed directive; nothing is armed on error.
    pub fn arm_plan(&self, plan: &str) -> Result<usize, FaultParseError> {
        let specs = parse_plan(plan)?;
        let n = specs.len();
        for spec in specs {
            self.arm(spec);
        }
        Ok(n)
    }

    /// Disarms every failpoint (hit/fire history included).
    pub fn disarm_all(&self) {
        self.armed.lock().expect("fault registry lock").clear();
    }

    /// Records a hit on `site`. Every armed spec matching the site
    /// counts the hit; the first one whose schedule says "fire now"
    /// (every `nth` hit, under its firing limit) returns its kind,
    /// counted as `faults.fired`.
    pub fn hit(&self, site: &str) -> Option<FaultKind> {
        let mut armed = self.armed.lock().expect("fault registry lock");
        let mut firing = None;
        for fault in armed.iter_mut().filter(|f| f.spec.site == site) {
            fault.hits += 1;
            let due = fault.hits % fault.spec.nth == 0;
            let capped = fault.spec.limit != 0 && fault.fired >= fault.spec.limit;
            if due && !capped && firing.is_none() {
                fault.fired += 1;
                firing = Some(fault.spec.kind);
            }
        }
        drop(armed);
        if firing.is_some() {
            self.add(ct_obs::names::FAULTS_FIRED, 1);
        }
        firing
    }

    /// Whether any failpoint is currently armed (cheap pre-check for
    /// hot call sites).
    pub fn is_armed(&self) -> bool {
        !self.armed.lock().expect("fault registry lock").is_empty()
    }
}

/// Global registry plus the result of its `CT_FAULTS` arming.
static GLOBAL: OnceLock<(FaultRegistry, Option<FaultParseError>)> = OnceLock::new();

fn global_init() -> &'static (FaultRegistry, Option<FaultParseError>) {
    GLOBAL.get_or_init(|| {
        let registry = FaultRegistry::new();
        let error = match std::env::var("CT_FAULTS") {
            Ok(plan) => registry.arm_plan(&plan).err(),
            Err(_) => None,
        };
        (registry, error)
    })
}

/// The process-global fault registry, armed from the `CT_FAULTS`
/// environment variable on first use. Stores opened without an
/// explicit registry consult this one.
pub fn global() -> &'static FaultRegistry {
    &global_init().0
}

/// The parse error from arming `CT_FAULTS`, if the variable was set
/// and malformed. Binaries check this at startup so a typo'd fault
/// campaign fails loudly instead of silently running clean.
pub fn env_arming_error() -> Option<&'static FaultParseError> {
    global_init().1.as_ref()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_round_trips_and_validates() {
        let spec: FaultSpec = "store.put.write:3:io".parse().unwrap();
        assert_eq!(
            spec,
            FaultSpec::every(sites::STORE_PUT_WRITE, 3, FaultKind::Io)
        );
        assert_eq!(spec.to_string(), "store.put.write:3:io");

        let spec: FaultSpec = "store.get.read:1:torn:2".parse().unwrap();
        assert_eq!(spec.kind, FaultKind::PartialWrite);
        assert_eq!(spec.limit, 2);
        assert_eq!(spec.to_string(), "store.get.read:1:torn:2");

        for bad in [
            "",
            "store.put.write",
            "store.put.write:0:io",
            "store.put.write:x:io",
            "store.put.write:1:lightning",
            "nonsense.site:1:io",
            "store.put.write:1:io:many",
            "store.put.write:1:io:1:extra",
        ] {
            let e = bad.parse::<FaultSpec>().unwrap_err();
            assert_eq!(e.spec, bad, "error must quote the input");
        }
    }

    #[test]
    fn plan_parses_lists_and_rejects_first_bad_entry() {
        let plan = parse_plan("store.put.write:1:io, store.get.read:2:corrupt:5").unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[1].site, sites::STORE_GET_READ);
        assert!(parse_plan("").unwrap().is_empty());
        let e = parse_plan("store.put.write:1:io,bogus").unwrap_err();
        assert_eq!(e.spec, "bogus");
    }

    #[test]
    fn fires_every_nth_hit_up_to_limit_with_counters() {
        let obs = Arc::new(ct_obs::Registry::new());
        let reg = FaultRegistry::with_obs(Arc::clone(&obs));
        reg.arm(FaultSpec {
            site: sites::STORE_PUT_WRITE.into(),
            nth: 3,
            kind: FaultKind::Io,
            limit: 2,
        });
        assert!(reg.is_armed());

        let fires: Vec<bool> = (0..12)
            .map(|_| reg.hit(sites::STORE_PUT_WRITE).is_some())
            .collect();
        // Hits 3 and 6 fire; the limit of 2 silences hits 9 and 12.
        let expected: Vec<bool> = (1..=12).map(|h| h % 3 == 0 && h <= 6).collect();
        assert_eq!(fires, expected);
        // Other sites are untouched.
        assert_eq!(reg.hit(sites::STORE_GET_READ), None);

        let snap = obs.snapshot();
        assert_eq!(snap.counter(ct_obs::names::FAULTS_ARMED), Some(1));
        assert_eq!(snap.counter(ct_obs::names::FAULTS_FIRED), Some(2));
    }

    #[test]
    fn disarm_clears_everything() {
        let reg = FaultRegistry::with_obs(Arc::new(ct_obs::Registry::new()));
        reg.arm(FaultSpec::every(
            sites::STORE_GET_READ,
            1,
            FaultKind::Enospc,
        ));
        assert_eq!(reg.hit(sites::STORE_GET_READ), Some(FaultKind::Enospc));
        reg.disarm_all();
        assert!(!reg.is_armed());
        assert_eq!(reg.hit(sites::STORE_GET_READ), None);
    }

    #[test]
    fn kinds_map_to_the_documented_errors() {
        assert_eq!(
            FaultKind::Io.io_error().kind(),
            std::io::ErrorKind::TimedOut
        );
        assert_eq!(
            FaultKind::Enospc.io_error().kind(),
            std::io::ErrorKind::StorageFull
        );
        for kind in [FaultKind::Corruption, FaultKind::PartialWrite] {
            assert!(kind.io_error().to_string().contains(kind.keyword()));
        }
    }
}
