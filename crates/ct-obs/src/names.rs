//! Canonical metric names used across the workspace.
//!
//! Naming scheme: `<layer>.<noun>[_<verb>]`, lower-snake inside a
//! dot-separated layer prefix. Span paths are slash-separated stage
//! names (`build/ensemble_evaluate`); see DESIGN.md for the full
//! conventions.

/// Hazard realizations evaluated fresh by the active hazard model
/// (any engine: surge, wind, compound; store hits do not count).
pub const HAZARD_REALIZATIONS_EVALUATED: &str = "hazard.realizations_evaluated";
/// Per-asset severity evaluations performed by the hazard engine.
pub const HAZARD_ASSET_EXPOSURES: &str = "hazard.asset_exposures";
/// Component-hazard evaluations performed inside compound hazards
/// (one per part per realization).
pub const HAZARD_COMPOUND_COMPONENT_EVALUATIONS: &str = "hazard.compound_component_evaluations";
/// Hurricane realizations evaluated against the POI set.
pub const HYDRO_REALIZATIONS_EVALUATED: &str = "hydro.realizations_evaluated";
/// Per-POI inundation evaluations.
pub const HYDRO_POI_EVALUATIONS: &str = "hydro.poi_evaluations";
/// Shallow-water solver invocations.
pub const SWE_SOLVES: &str = "swe.solves";
/// Shallow-water solver time steps executed.
pub const SWE_STEPS: &str = "swe.steps";
/// Attacker strategy invocations.
pub const ATTACKER_ATTACKS: &str = "attacker.attacks";
/// Candidate final states examined across attacker searches (1 per
/// greedy attack; the full enumeration for the exhaustive attacker).
pub const ATTACKER_CANDIDATES_EXAMINED: &str = "attacker.candidates_examined";
/// Discrete events dispatched by the simulator (deliveries, timers,
/// faults).
pub const SIMNET_EVENTS_DISPATCHED: &str = "simnet.events_dispatched";
/// Messages dropped by crashes, partitions, or schedule faults.
pub const SIMNET_MESSAGES_DROPPED: &str = "simnet.messages_dropped";
/// Timer events swallowed because their node was crashed.
pub const SIMNET_TIMERS_SUPPRESSED: &str = "simnet.timers_suppressed";
/// Sends discarded by the randomized schedule tier.
pub const SIMNET_SCHEDULE_DISCARDS: &str = "simnet.schedule.discards";
/// Sends delayed by the randomized schedule tier.
pub const SIMNET_SCHEDULE_DELAYS: &str = "simnet.schedule.delays";
/// Sends duplicated by the randomized schedule tier.
pub const SIMNET_SCHEDULE_DUPLICATES: &str = "simnet.schedule.duplicates";
/// Events executed across all paths of exhaustive explorations.
pub const SIMNET_EXPLORE_VISITED: &str = "simnet.explore.visited";
/// Explored subtrees skipped by state-hash deduplication.
pub const SIMNET_EXPLORE_PRUNED: &str = "simnet.explore.pruned";
/// Choice points branched on during exhaustive explorations.
pub const SIMNET_EXPLORE_CHOICE_POINTS: &str = "simnet.explore.choice_points";
/// Conflicts past the exploration depth bound (heap-order fallback).
pub const SIMNET_EXPLORE_DEPTH_TRUNCATED: &str = "simnet.explore.depth_truncated";
/// Terminal states reached by exhaustive explorations.
pub const SIMNET_EXPLORE_TERMINALS: &str = "simnet.explore.terminals";
/// Protocol verdict executions.
pub const REPLICATION_VERDICT_RUNS: &str = "replication.verdict_runs";
/// Table I cell states model-checked by `ct check`.
pub const CHECK_STATES_CHECKED: &str = "check.states_checked";
/// Randomized schedules executed by `ct check` campaigns.
pub const CHECK_SCHEDULES_RUN: &str = "check.schedules_run";
/// Property violations found by `ct check`.
pub const CHECK_VIOLATIONS: &str = "check.violations";
/// Site plans profiled.
pub const PROFILE_PLANS_EVALUATED: &str = "profile.plans_evaluated";
/// Flood-pattern histogram cache hits.
pub const PROFILE_PATTERN_CACHE_HITS: &str = "profile.pattern_cache_hits";
/// Flood-pattern histograms computed (cache misses).
pub const PROFILE_PATTERN_CACHE_MISSES: &str = "profile.pattern_cache_misses";
/// Figures reproduced.
pub const FIGURES_REPRODUCED: &str = "figures.reproduced";
/// Cross-validation states executed.
pub const CROSSVAL_STATES_VALIDATED: &str = "crossval.states_validated";
/// Backup-site placement candidates ranked.
pub const PLACEMENT_CANDIDATES_RANKED: &str = "placement.candidates_ranked";
/// Artifact-store record lookups that returned a valid record.
pub const STORE_HITS: &str = "store.hits";
/// Artifact-store record lookups that found nothing.
pub const STORE_MISSES: &str = "store.misses";
/// Artifact-store records written (atomic temp-then-rename commits).
pub const STORE_RECORDS_WRITTEN: &str = "store.records_written";
/// Records that failed frame or payload validation (truncated, bad
/// magic, wrong version, checksum mismatch, undecodable payload).
pub const STORE_CORRUPT_RECORDS: &str = "store.corrupt_records";
/// Records removed from the store (corruption cleanup or explicit
/// eviction).
pub const STORE_EVICTIONS: &str = "store.evictions";
/// Transient store I/O errors absorbed by the bounded retry loop
/// (one per retried attempt, successful or not).
pub const STORE_RETRIES: &str = "store.retries";
/// Store failures absorbed by callers degrading to
/// compute-without-cache instead of aborting the run.
pub const STORE_DEGRADED: &str = "store.degraded";
/// Orphaned `tmp/` staging files swept (crashed-writer residue).
pub const STORE_TMP_SWEPT: &str = "store.tmp_swept";
/// Entries appended to packed-store segments (puts and tombstones).
pub const STORE_SEGMENT_APPENDS: &str = "store.segment.appends";
/// Segments sealed with a footer index (rolls and compactions).
pub const STORE_SEGMENT_SEALS: &str = "store.segment.seals";
/// Group fsyncs of the active segment (one per batch, not per put).
pub const STORE_SEGMENT_GROUP_SYNCS: &str = "store.segment.group_syncs";
/// Segments whose index was rebuilt from a valid footer at open.
pub const STORE_SEGMENT_FOOTER_LOADS: &str = "store.segment.footer_loads";
/// Segments rebuilt by a full frame scan at open (unsealed tail, or
/// a missing/damaged footer).
pub const STORE_SEGMENT_SCANS: &str = "store.segment.scans";
/// Segments whose torn tail was truncated back to the last clean
/// entry boundary at open.
pub const STORE_SEGMENT_TRUNCATED_TAILS: &str = "store.segment.truncated_tails";
/// Segments rewritten by `fsck --repair` compaction.
pub const STORE_SEGMENT_COMPACTIONS: &str = "store.segment.compactions";
/// Remote-store `get` round-trips issued by the HTTP client backend.
pub const STORE_REMOTE_GETS: &str = "store.remote.gets";
/// Remote-store `put` round-trips issued by the HTTP client backend.
pub const STORE_REMOTE_PUTS: &str = "store.remote.puts";
/// Remote-store gets answered with a record by the server.
pub const STORE_REMOTE_HITS: &str = "store.remote.hits";
/// Remote-store gets answered with a 404 miss by the server.
pub const STORE_REMOTE_MISSES: &str = "store.remote.misses";
/// Remote-store evict/invalidate round-trips issued by the client.
pub const STORE_REMOTE_EVICTIONS: &str = "store.remote.evictions";
/// Remote-store operations that failed after the retry budget was
/// exhausted (callers degrade to compute-without-cache).
pub const STORE_REMOTE_ERRORS: &str = "store.remote.errors";
/// Remote-store operations refused with a permanent 4xx status (the
/// request itself is wrong; retrying would repeat the refusal, so the
/// retry loop is skipped entirely).
pub const STORE_REMOTE_PERMANENT: &str = "store.remote.permanent";
/// Pooled connections checked out healthy and reused (no dial).
pub const STORE_REMOTE_POOL_HITS: &str = "store.remote.pool.hits";
/// Fresh TCP connections dialed by the client pool (pool empty, or
/// every idle candidate was stale).
pub const STORE_REMOTE_POOL_DIALS: &str = "store.remote.pool.dials";
/// Idle pooled connections retired at checkout because the health
/// probe saw EOF, buffered garbage, or a socket error.
pub const STORE_REMOTE_POOL_RETIRED: &str = "store.remote.pool.retired";
/// Serving-cache lookups satisfied from the in-memory LRU.
pub const STORE_LRU_HITS: &str = "store.lru.hits";
/// Serving-cache lookups that fell through to the backing store.
pub const STORE_LRU_MISSES: &str = "store.lru.misses";
/// Entries dropped from the serving cache to honor the byte budget.
pub const STORE_LRU_EVICTIONS: &str = "store.lru.evictions";
/// HTTP requests accepted by `ct serve` (all routes).
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Malformed, oversized, or unroutable requests answered with a 4xx
/// status (the worker survives and keeps serving).
pub const SERVE_BAD_REQUESTS: &str = "serve.bad_requests";
/// `/probe` queries answered (cached or computed).
pub const SERVE_PROBES: &str = "serve.probes";
/// Case studies built to answer a `/probe` miss (subsequent probes of
/// the same tuple hit the in-memory study cache).
pub const SERVE_PROBE_BUILDS: &str = "serve.probe_builds";
/// Requests served on an already-established connection (request #2
/// and beyond on a kept-alive socket; request #1 is never a reuse).
pub const SERVE_KEEPALIVE_REUSES: &str = "serve.keepalive_reuses";
/// Kept-alive connections closed by the server's idle sweep after
/// `CT_SERVE_IDLE_MS` without a byte from the client.
pub const SERVE_IDLE_CLOSES: &str = "serve.idle_closes";
/// Failpoints armed on a fault registry (test- or `CT_FAULTS`-driven).
pub const FAULTS_ARMED: &str = "faults.armed";
/// Failpoint firings: armed faults actually injected at their site.
pub const FAULTS_FIRED: &str = "faults.fired";
/// Regions prepared in the active portfolio (one per region per
/// pipeline build).
pub const PORTFOLIO_REGIONS: &str = "portfolio.regions";
/// Candidate points scanned by spatial-index range queries (bucket
/// superset, before the exact distance filter).
pub const SPATIAL_CANDIDATES: &str = "spatial.candidates";
/// Points returned by spatial-index range queries (after the exact
/// distance filter).
pub const SPATIAL_HITS: &str = "spatial.hits";
/// Spatial-index range queries issued (one per `within_km` call), so
/// `spatial.candidates / spatial.queries` is the mean scan width — the
/// number a brute-force scan would pin at the indexed point count.
pub const SPATIAL_QUERIES: &str = "spatial.queries";
/// Effective worker-thread count of the last pipeline build (gauge).
pub const BUILD_THREADS: &str = "build.threads";
/// Histogram: time steps per shallow-water solve.
pub const SWE_STEPS_PER_SOLVE: &str = "swe.steps_per_solve";
/// Histogram: distinct flood patterns per profiled site plan.
pub const PROFILE_PATTERNS_PER_PLAN: &str = "profile.patterns_per_plan";
/// Histogram: committed record sizes (framed bytes on disk).
pub const STORE_RECORD_BYTES: &str = "store.record_bytes";
/// Histogram: milliseconds slept per store retry (deadline-budgeted
/// backoff; p50/p99 readable from the bucket rows).
pub const STORE_RETRY_WAIT_MS: &str = "store.retry_wait_ms";
/// Histogram: round-trip milliseconds per remote-store operation
/// (connect + request + response, as seen by the client).
pub const STORE_REMOTE_RTT_MS: &str = "store.remote.rtt_ms";
/// Histogram: milliseconds to serve one HTTP request (read to flush,
/// as seen by the server worker).
pub const SERVE_REQUEST_MS: &str = "serve.request_ms";
/// Histogram: milliseconds a server connection stayed open, accept to
/// close (keep-alive stretches the tail; one observation per socket).
pub const SERVE_CONN_LIFETIME_MS: &str = "serve.conn_lifetime_ms";

/// Bucket bounds for [`SWE_STEPS_PER_SOLVE`].
pub const SWE_STEPS_PER_SOLVE_BOUNDS: [f64; 6] = [250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0];
/// Bucket bounds for [`PROFILE_PATTERNS_PER_PLAN`].
pub const PROFILE_PATTERNS_PER_PLAN_BOUNDS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
/// Bucket bounds for [`STORE_RECORD_BYTES`].
pub const STORE_RECORD_BYTES_BOUNDS: [f64; 6] = [256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0];
/// Bucket bounds for [`STORE_RETRY_WAIT_MS`].
pub const STORE_RETRY_WAIT_MS_BOUNDS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
/// Bucket bounds for [`STORE_REMOTE_RTT_MS`].
pub const STORE_REMOTE_RTT_MS_BOUNDS: [f64; 8] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0];
/// Bucket bounds for [`SERVE_REQUEST_MS`].
pub const SERVE_REQUEST_MS_BOUNDS: [f64; 8] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 64.0, 1000.0];
/// Bucket bounds for [`SERVE_CONN_LIFETIME_MS`].
pub const SERVE_CONN_LIFETIME_MS_BOUNDS: [f64; 7] =
    [1.0, 10.0, 100.0, 1000.0, 10000.0, 60000.0, 300000.0];

/// Registers the full canonical metric set on `registry` so
/// snapshots list every standard counter even when a run never
/// exercises its code path (e.g. `ct figures` never steps the SWE
/// solver, but its `--metrics` output still reports `swe.steps,0`).
pub fn register_defaults(registry: &crate::Registry) {
    for name in [
        HAZARD_REALIZATIONS_EVALUATED,
        HAZARD_ASSET_EXPOSURES,
        HAZARD_COMPOUND_COMPONENT_EVALUATIONS,
        HYDRO_REALIZATIONS_EVALUATED,
        HYDRO_POI_EVALUATIONS,
        SWE_SOLVES,
        SWE_STEPS,
        ATTACKER_ATTACKS,
        ATTACKER_CANDIDATES_EXAMINED,
        SIMNET_EVENTS_DISPATCHED,
        SIMNET_MESSAGES_DROPPED,
        SIMNET_TIMERS_SUPPRESSED,
        SIMNET_SCHEDULE_DISCARDS,
        SIMNET_SCHEDULE_DELAYS,
        SIMNET_SCHEDULE_DUPLICATES,
        SIMNET_EXPLORE_VISITED,
        SIMNET_EXPLORE_PRUNED,
        SIMNET_EXPLORE_CHOICE_POINTS,
        SIMNET_EXPLORE_DEPTH_TRUNCATED,
        SIMNET_EXPLORE_TERMINALS,
        REPLICATION_VERDICT_RUNS,
        CHECK_STATES_CHECKED,
        CHECK_SCHEDULES_RUN,
        CHECK_VIOLATIONS,
        PROFILE_PLANS_EVALUATED,
        PROFILE_PATTERN_CACHE_HITS,
        PROFILE_PATTERN_CACHE_MISSES,
        FIGURES_REPRODUCED,
        CROSSVAL_STATES_VALIDATED,
        PLACEMENT_CANDIDATES_RANKED,
        STORE_HITS,
        STORE_MISSES,
        STORE_RECORDS_WRITTEN,
        STORE_CORRUPT_RECORDS,
        STORE_EVICTIONS,
        STORE_RETRIES,
        STORE_DEGRADED,
        STORE_TMP_SWEPT,
        STORE_SEGMENT_APPENDS,
        STORE_SEGMENT_SEALS,
        STORE_SEGMENT_GROUP_SYNCS,
        STORE_SEGMENT_FOOTER_LOADS,
        STORE_SEGMENT_SCANS,
        STORE_SEGMENT_TRUNCATED_TAILS,
        STORE_SEGMENT_COMPACTIONS,
        STORE_REMOTE_GETS,
        STORE_REMOTE_PUTS,
        STORE_REMOTE_HITS,
        STORE_REMOTE_MISSES,
        STORE_REMOTE_EVICTIONS,
        STORE_REMOTE_ERRORS,
        STORE_REMOTE_PERMANENT,
        STORE_REMOTE_POOL_HITS,
        STORE_REMOTE_POOL_DIALS,
        STORE_REMOTE_POOL_RETIRED,
        STORE_LRU_HITS,
        STORE_LRU_MISSES,
        STORE_LRU_EVICTIONS,
        SERVE_REQUESTS,
        SERVE_BAD_REQUESTS,
        SERVE_PROBES,
        SERVE_PROBE_BUILDS,
        SERVE_KEEPALIVE_REUSES,
        SERVE_IDLE_CLOSES,
        FAULTS_ARMED,
        FAULTS_FIRED,
        PORTFOLIO_REGIONS,
        SPATIAL_CANDIDATES,
        SPATIAL_HITS,
        SPATIAL_QUERIES,
    ] {
        registry.counter(name);
    }
    registry.gauge(BUILD_THREADS);
    registry.histogram(SWE_STEPS_PER_SOLVE, &SWE_STEPS_PER_SOLVE_BOUNDS);
    registry.histogram(PROFILE_PATTERNS_PER_PLAN, &PROFILE_PATTERNS_PER_PLAN_BOUNDS);
    registry.histogram(STORE_RECORD_BYTES, &STORE_RECORD_BYTES_BOUNDS);
    registry.histogram(STORE_RETRY_WAIT_MS, &STORE_RETRY_WAIT_MS_BOUNDS);
    registry.histogram(STORE_REMOTE_RTT_MS, &STORE_REMOTE_RTT_MS_BOUNDS);
    registry.histogram(SERVE_REQUEST_MS, &SERVE_REQUEST_MS_BOUNDS);
    registry.histogram(SERVE_CONN_LIFETIME_MS, &SERVE_CONN_LIFETIME_MS_BOUNDS);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_register_every_name() {
        let reg = crate::Registry::new();
        register_defaults(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 70);
        assert_eq!(snap.counter(PORTFOLIO_REGIONS), Some(0));
        assert_eq!(snap.counter(SPATIAL_CANDIDATES), Some(0));
        assert_eq!(snap.counter(SPATIAL_HITS), Some(0));
        assert_eq!(snap.counter(SERVE_KEEPALIVE_REUSES), Some(0));
        assert_eq!(snap.counter(STORE_REMOTE_POOL_HITS), Some(0));
        assert_eq!(snap.counter(STORE_REMOTE_PERMANENT), Some(0));
        assert_eq!(snap.counter(STORE_REMOTE_GETS), Some(0));
        assert_eq!(snap.counter(SERVE_REQUESTS), Some(0));
        assert_eq!(snap.counter(STORE_LRU_EVICTIONS), Some(0));
        assert_eq!(snap.counter(FAULTS_FIRED), Some(0));
        assert_eq!(snap.counter(STORE_DEGRADED), Some(0));
        assert_eq!(snap.counter(SWE_STEPS), Some(0));
        assert_eq!(snap.counter(HAZARD_REALIZATIONS_EVALUATED), Some(0));
        assert_eq!(snap.counter(STORE_HITS), Some(0));
        assert_eq!(snap.counter(STORE_SEGMENT_APPENDS), Some(0));
        assert_eq!(snap.counter(STORE_SEGMENT_COMPACTIONS), Some(0));
        assert_eq!(snap.gauge(BUILD_THREADS), Some(0.0));
        assert_eq!(snap.histograms.len(), 7);
    }
}
