//! RAII span timers with thread-local nesting.

use crate::registry::Registry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

thread_local! {
    /// The stack of open span paths on this thread. Spans opened on
    /// worker threads nest independently of the coordinator's stack —
    /// by design, deterministic instrumentation opens spans only on
    /// coordinator code paths.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open span. Created by [`Registry::span`]; records aggregated
/// wall (and optional CPU-proxy) time under its slash-separated path
/// when dropped. Guards must be dropped in LIFO order, which normal
/// scope-based usage guarantees.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    registry: &'a Registry,
    path: String,
    start: Instant,
    /// Explicitly-attributed CPU-proxy nanoseconds (e.g. summed
    /// worker busy time). When zero at drop, wall time is used as the
    /// CPU proxy — exact for serial spans.
    cpu_ns: AtomicU64,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn enter(registry: &'a Registry, name: &str) -> Self {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        Self {
            registry,
            path,
            start: Instant::now(),
            cpu_ns: AtomicU64::new(0),
        }
    }

    /// The span's full slash-separated path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Attributes CPU-proxy time to the span — typically the summed
    /// per-item busy time of parallel workers running inside it.
    /// Shared references suffice, so workers can report concurrently.
    pub fn add_cpu_ns(&self, ns: u64) {
        self.cpu_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let wall_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let attributed = self.cpu_ns.load(Ordering::Relaxed);
        let cpu_ns = if attributed == 0 { wall_ns } else { attributed };
        self.registry.record_span(&self.path, wall_ns, cpu_ns);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(stack.last(), Some(&self.path), "span drop order violated");
            stack.pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_paths() {
        let reg = Registry::new();
        {
            let _a = reg.span("build");
            {
                let _b = reg.span("terrain");
            }
            {
                let _c = reg.span("ensemble");
            }
        }
        let snap = reg.snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["build", "build/ensemble", "build/terrain"]);
    }

    #[test]
    fn repeated_spans_aggregate_calls() {
        let reg = Registry::new();
        for _ in 0..3 {
            let _s = reg.span("stage");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans[0].calls, 3);
    }

    #[test]
    fn cpu_attribution_overrides_wall() {
        let reg = Registry::new();
        {
            let s = reg.span("par");
            s.add_cpu_ns(5_000);
            s.add_cpu_ns(7_000);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans[0].cpu_ns, 12_000);
    }

    #[test]
    fn serial_span_cpu_defaults_to_wall() {
        let reg = Registry::new();
        {
            let _s = reg.span("serial");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans[0].cpu_ns, snap.spans[0].wall_ns);
    }

    #[test]
    fn sibling_threads_do_not_share_nesting() {
        let reg = Registry::new();
        let _outer = reg.span("outer");
        std::thread::scope(|s| {
            s.spawn(|| {
                let _inner = reg.span("inner");
            });
        });
        let snap = reg.snapshot();
        // The spawned thread has its own stack: no "outer/inner".
        assert!(snap.spans.iter().any(|sp| sp.path == "inner"));
        assert!(!snap.spans.iter().any(|sp| sp.path == "outer/inner"));
    }
}
