//! The metric registry: counters, gauges, histograms, span stats.

use crate::snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};
use crate::span::SpanGuard;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A monotonically-increasing counter. Handles are cheap clones of a
/// shared atomic; workers can increment them without locking.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge (stored as bit pattern).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Sorted inclusive upper bounds; an implicit `+inf` bucket
    /// follows the last bound.
    pub(crate) bounds: Vec<f64>,
    /// One bucket per bound plus the overflow bucket.
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    /// Sum of observed values as f64 bits, accumulated by CAS.
    pub(crate) sum_bits: AtomicU64,
}

/// A fixed-bucket histogram. Observations pick the first bucket whose
/// upper bound is `>=` the value (overflowing into an implicit `+inf`
/// bucket), so bucket counts are exact integers and deterministic.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let core = &*self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        // CAS loop: f64 addition is not atomic; contention is rare
        // (observations are per-solve, not per-step).
        let mut current = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match core.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SpanStat {
    pub(crate) calls: u64,
    pub(crate) wall_ns: u64,
    pub(crate) cpu_ns: u64,
}

/// A thread-safe registry of named metrics. All handles stay valid
/// for the registry's lifetime; lookups take a read lock only and the
/// returned handles are lock-free to update.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

/// Metric names are CSV cells and span-path segments, so strip the
/// characters that would corrupt either.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            ',' | '\n' | '\r' => '_',
            c => c,
        })
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().expect("counter map lock").get(name) {
            return c.clone();
        }
        let mut map = self.counters.write().expect("counter map lock");
        map.entry(sanitize(name))
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge named `name`, registering it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().expect("gauge map lock").get(name) {
            return g.clone();
        }
        let mut map = self.gauges.write().expect("gauge map lock");
        map.entry(sanitize(name))
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            .clone()
    }

    /// The histogram named `name`. `bounds` (inclusive upper bucket
    /// bounds; sorted and deduplicated here) apply only on first
    /// registration — later callers share the existing buckets.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        if let Some(h) = self
            .histograms
            .read()
            .expect("histogram map lock")
            .get(name)
        {
            return h.clone();
        }
        let mut sorted: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        let mut map = self.histograms.write().expect("histogram map lock");
        map.entry(sanitize(name))
            .or_insert_with(|| {
                let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
                Histogram(Arc::new(HistogramCore {
                    bounds: sorted,
                    buckets,
                    count: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                }))
            })
            .clone()
    }

    /// Opens a span; see [`crate::span`]. The guard records wall time
    /// (and any CPU time attributed with [`SpanGuard::add_cpu_ns`])
    /// under the thread's current span path when dropped.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard::enter(self, &sanitize(name))
    }

    pub(crate) fn record_span(&self, path: &str, wall_ns: u64, cpu_ns: u64) {
        let mut spans = self.spans.lock().expect("span map lock");
        let stat = spans.entry(path.to_string()).or_default();
        stat.calls += 1;
        stat.wall_ns += wall_ns;
        stat.cpu_ns += cpu_ns;
    }

    /// A consistent-enough point-in-time view: each metric is read
    /// atomically; the set of metrics is the set registered at call
    /// time, in sorted name order.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .expect("counter map lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("gauge map lock")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("histogram map lock")
            .iter()
            .map(|(name, h)| {
                let core = &*h.0;
                HistogramSnapshot {
                    name: name.clone(),
                    bounds: core.bounds.clone(),
                    buckets: core
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                    count: core.count.load(Ordering::Relaxed),
                    sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                }
            })
            .collect();
        let spans = self
            .spans
            .lock()
            .expect("span map lock")
            .iter()
            .map(|(path, stat)| SpanSnapshot {
                path: path.clone(),
                calls: stat.calls,
                wall_ns: stat.wall_ns,
                cpu_ns: stat.cpu_ns,
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }

    /// Zeroes all metrics and clears span statistics. Registered
    /// counter/gauge/histogram names survive (handles stay valid), so
    /// post-reset snapshots still list the full metric set.
    pub fn reset(&self) {
        for c in self.counters.read().expect("counter map lock").values() {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.read().expect("gauge map lock").values() {
            g.0.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for h in self.histograms.read().expect("histogram map lock").values() {
            for b in &h.0.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.0.count.store(0, Ordering::Relaxed);
            h.0.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        }
        self.spans.lock().expect("span map lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_sum_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("work");
        thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter("work").get(), 8000);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = Registry::new();
        reg.gauge("threads").set(8.0);
        reg.gauge("threads").set(4.0);
        assert_eq!(reg.gauge("threads").get(), 4.0);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[1.0, 10.0]);
        for v in [0.5, 1.0, 2.0, 100.0] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.buckets, vec![2, 1, 1]);
        assert_eq!(hs.count, 4);
        assert!((hs.sum - 103.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduped() {
        let reg = Registry::new();
        reg.histogram("h", &[10.0, 1.0, 10.0, f64::NAN]);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].bounds, vec![1.0, 10.0]);
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let reg = Registry::new();
        reg.counter("a").add(5);
        reg.gauge("g").set(1.5);
        reg.histogram("h", &[1.0]).observe(0.5);
        {
            let _s = reg.span("stage");
        }
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), Some(0));
        assert_eq!(snap.gauges, vec![("g".to_string(), 0.0)]);
        assert_eq!(snap.histograms[0].count, 0);
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn names_are_sanitized_for_csv() {
        let reg = Registry::new();
        reg.counter("bad,name\nhere").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("bad_name_here"), Some(1));
    }
}
