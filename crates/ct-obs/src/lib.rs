//! Zero-dependency observability for the compound-threats pipeline.
//!
//! The crate provides the measurement substrate the analysis layers
//! (`ct-hydro`, `ct-threat`, `ct-simnet`, `ct-replication`,
//! `compound-threats`) report into:
//!
//! - a [`Registry`]: thread-safe counters, gauges, and fixed-bucket
//!   histograms, aggregated with atomics so worker threads of the
//!   work-stealing scheduler can report without coordination;
//! - scoped [`SpanGuard`] timers: RAII guards that nest into a span
//!   tree (`build/ensemble_evaluate`, …) and record wall time plus an
//!   explicitly-attributed CPU-proxy time (the summed busy time of
//!   parallel workers inside the span);
//! - a [`Snapshot`]: a point-in-time, machine-readable view of the
//!   registry, rendered as CSV or markdown by hand (no serializer
//!   dependencies, consistent with the `report` module's policy).
//!
//! # Determinism
//!
//! Counter values, histogram bucket counts, and the span tree's
//! *structure* (paths and call counts) are deterministic for a
//! deterministic workload, regardless of worker-thread count: counts
//! are commutative sums, and spans are only opened by coordinator
//! code, never inside worker closures. Wall/CPU times naturally vary
//! between runs and are excluded from determinism guarantees.
//!
//! # Example
//!
//! ```
//! let registry = ct_obs::Registry::new();
//! {
//!     let span = registry.span("stage");
//!     registry.counter("items_processed").add(3);
//!     span.add_cpu_ns(1_500);
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("items_processed"), Some(3));
//! assert!(snap.to_csv().contains("span,stage,calls,1"));
//! ```
//!
//! Most call sites use the process-global registry via the
//! free functions: [`counter`], [`gauge`], [`histogram`], [`span`],
//! [`snapshot`], [`reset`].

pub mod names;
mod registry;
mod snapshot;
mod span;

pub use registry::{Counter, Gauge, Histogram, Registry};
pub use snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};
pub use span::SpanGuard;

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry all instrumented crates report into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// A counter handle from the global registry (created on first use).
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Adds `delta` to a global counter (one-shot form of [`counter`]).
pub fn add(name: &str, delta: u64) {
    global().counter(name).add(delta);
}

/// Sets a global gauge.
pub fn gauge(name: &str, value: f64) {
    global().gauge(name).set(value);
}

/// A histogram handle from the global registry. `bounds` are the
/// inclusive upper bucket bounds; they only apply on first
/// registration (later calls reuse the existing buckets).
pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
    global().histogram(name, bounds)
}

/// Opens a span on the global registry; the returned RAII guard
/// records the span on drop. Nested calls on the same thread build
/// slash-separated paths (`parent/child`).
pub fn span(name: &str) -> SpanGuard<'static> {
    global().span(name)
}

/// A point-in-time snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Zeroes every metric in the global registry (registrations are
/// kept, so a snapshot after `reset` still lists all known names).
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_counter_round_trip() {
        // The global registry is shared across tests in this binary,
        // so use names no other test touches.
        add("lib.round_trip", 2);
        counter("lib.round_trip").inc();
        assert_eq!(snapshot().counter("lib.round_trip"), Some(3));
    }

    #[test]
    fn global_span_records() {
        {
            let _g = span("lib_test_span");
        }
        let snap = snapshot();
        assert!(snap.spans.iter().any(|s| s.path == "lib_test_span"));
    }
}
