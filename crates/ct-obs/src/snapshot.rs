//! Point-in-time snapshots and their hand-rolled renderers.

use std::fmt::Write as _;

/// One histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Inclusive upper bucket bounds (sorted). An implicit `+inf`
    /// bucket follows the last bound.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// One span path's aggregated statistics at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Slash-separated span path (`build/ensemble_evaluate`).
    pub path: String,
    /// Times the span was entered.
    pub calls: u64,
    /// Total wall-clock nanoseconds across calls.
    pub wall_ns: u64,
    /// Total CPU-proxy nanoseconds across calls (worker busy time
    /// when attributed, wall time otherwise).
    pub cpu_ns: u64,
}

/// A point-in-time view of a [`crate::Registry`], sorted by metric
/// name so renderings are stable.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, f64)>,
    /// Histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span statistics, sorted by path.
    pub spans: Vec<SpanSnapshot>,
}

impl Snapshot {
    /// The value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The statistics of a span path, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Renders the snapshot as CSV with a fixed
    /// `kind,name,field,value` schema: one row per counter/gauge
    /// value, histogram bucket (`le_<bound>` / `le_inf`), histogram
    /// `count`/`sum`, and span `calls`/`wall_ns`/`cpu_ns`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (name, value) in &self.counters {
            writeln!(out, "counter,{name},value,{value}").expect("write to string");
        }
        for (name, value) in &self.gauges {
            writeln!(out, "gauge,{name},value,{value}").expect("write to string");
        }
        for h in &self.histograms {
            for (i, count) in h.buckets.iter().enumerate() {
                match h.bounds.get(i) {
                    Some(bound) => writeln!(out, "hist,{},le_{bound},{count}", h.name),
                    None => writeln!(out, "hist,{},le_inf,{count}", h.name),
                }
                .expect("write to string");
            }
            writeln!(out, "hist,{},count,{}", h.name, h.count).expect("write to string");
            writeln!(out, "hist,{},sum,{}", h.name, h.sum).expect("write to string");
        }
        for s in &self.spans {
            writeln!(out, "span,{},calls,{}", s.path, s.calls).expect("write to string");
            writeln!(out, "span,{},wall_ns,{}", s.path, s.wall_ns).expect("write to string");
            writeln!(out, "span,{},cpu_ns,{}", s.path, s.cpu_ns).expect("write to string");
        }
        out
    }

    /// Renders the snapshot as a markdown document (one table per
    /// metric kind), consistent with the `report` module's style.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# Metrics snapshot\n\n");
        if !self.spans.is_empty() {
            out.push_str("## Spans\n\n| span | calls | wall ms | cpu ms |\n|---|---|---|---|\n");
            for s in &self.spans {
                writeln!(
                    out,
                    "| {} | {} | {:.3} | {:.3} |",
                    s.path,
                    s.calls,
                    s.wall_ns as f64 / 1e6,
                    s.cpu_ns as f64 / 1e6
                )
                .expect("write to string");
            }
            out.push('\n');
        }
        if !self.counters.is_empty() {
            out.push_str("## Counters\n\n| counter | value |\n|---|---|\n");
            for (name, value) in &self.counters {
                writeln!(out, "| {name} | {value} |").expect("write to string");
            }
            out.push('\n');
        }
        if !self.gauges.is_empty() {
            out.push_str("## Gauges\n\n| gauge | value |\n|---|---|\n");
            for (name, value) in &self.gauges {
                writeln!(out, "| {name} | {value} |").expect("write to string");
            }
            out.push('\n');
        }
        if !self.histograms.is_empty() {
            out.push_str(
                "## Histograms\n\n| histogram | count | sum | buckets |\n|---|---|---|---|\n",
            );
            for h in &self.histograms {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, c)| match h.bounds.get(i) {
                        Some(b) => format!("≤{b}: {c}"),
                        None => format!("≤inf: {c}"),
                    })
                    .collect();
                writeln!(
                    out,
                    "| {} | {} | {} | {} |",
                    h.name,
                    h.count,
                    h.sum,
                    buckets.join(", ")
                )
                .expect("write to string");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.counter("b.count").add(7);
        reg.counter("a.count").add(2);
        reg.gauge("threads").set(8.0);
        let h = reg.histogram("steps", &[10.0, 100.0]);
        h.observe(5.0);
        h.observe(500.0);
        {
            let _outer = reg.span("build");
            let _inner = reg.span("terrain");
        }
        reg.snapshot()
    }

    #[test]
    fn csv_schema_and_order() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,field,value");
        // Counters sorted by name.
        assert_eq!(lines[1], "counter,a.count,value,2");
        assert_eq!(lines[2], "counter,b.count,value,7");
        assert_eq!(lines[3], "gauge,threads,value,8");
        assert!(lines.contains(&"hist,steps,le_10,1"));
        assert!(lines.contains(&"hist,steps,le_inf,1"));
        assert!(lines.contains(&"hist,steps,count,2"));
        assert!(lines.contains(&"span,build/terrain,calls,1"));
        // Every row has exactly four fields.
        for line in &lines {
            assert_eq!(line.split(',').count(), 4, "bad row: {line}");
        }
    }

    #[test]
    fn markdown_sections_present() {
        let md = sample().to_markdown();
        for needle in ["## Spans", "## Counters", "## Gauges", "## Histograms"] {
            assert!(md.contains(needle), "missing {needle}");
        }
        assert!(md.contains("| build/terrain | 1 |"));
        // Table rows are well formed.
        for line in md.lines().filter(|l| l.starts_with('|')) {
            assert!(line.ends_with('|'), "ragged row: {line}");
        }
    }

    #[test]
    fn accessors_find_metrics() {
        let snap = sample();
        assert_eq!(snap.counter("a.count"), Some(2));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("threads"), Some(8.0));
        assert_eq!(snap.span("build").map(|s| s.calls), Some(1));
    }
}
