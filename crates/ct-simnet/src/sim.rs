//! The discrete-event kernel.

use crate::actor::{Actor, Command, Ctx, NodeId, SiteId};
use crate::explore::{MsgClass, ScheduleDist};
use crate::fault::{FaultAction, FaultPlan};
use crate::net::{NetConfig, NetState};
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What an event does when it fires.
#[derive(Debug, Clone)]
pub(crate) enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, id: u64 },
    Fault(FaultAction),
}

/// A scheduled event; ordered by `(time, seq)` so execution is total
/// and deterministic.
#[derive(Debug, Clone)]
pub(crate) struct Event<M> {
    pub(crate) at: SimTime,
    pub(crate) kind: EventKind<M>,
}

/// Key used for heap ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey(SimTime, u64);

/// Counters describing a finished (or paused) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Messages handed to `on_message`.
    pub delivered: u64,
    /// Messages dropped by crashes, partitions, or schedule faults.
    pub dropped: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Timer events swallowed because their node was crashed.
    pub timers_suppressed: u64,
    /// Fault actions applied.
    pub faults_applied: u64,
    /// Sends discarded by the randomized schedule tier.
    pub schedule_discards: u64,
    /// Sends delayed by the randomized schedule tier.
    pub schedule_delays: u64,
    /// Sends duplicated by the randomized schedule tier.
    pub schedule_duplicates: u64,
}

/// Randomized-schedule state: the distribution, its own RNG stream
/// (separate from the latency stream so enabling schedule faults
/// never perturbs latency draws), and the message classifier.
struct ScheduleState<M> {
    dist: ScheduleDist,
    rng: StdRng,
    classify: fn(&M) -> &'static str,
}

impl<M> std::fmt::Debug for ScheduleState<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleState")
            .field("dist", &self.dist)
            .finish_non_exhaustive()
    }
}

impl<M> Clone for ScheduleState<M> {
    fn clone(&self) -> Self {
        Self {
            dist: self.dist.clone(),
            rng: self.rng.clone(),
            classify: self.classify,
        }
    }
}

impl<M> ScheduleState<M> {
    /// One decision per send; first matching fault wins. The draw
    /// order (discard, then delay, then duplicate) is part of the
    /// replayable-schedule contract.
    fn decide(&mut self, msg: &M) -> ScheduleDecision {
        let faults = self.dist.faults_for((self.classify)(msg));
        if faults.discard > 0.0 && self.rng.random_range(0.0..1.0f64) < faults.discard {
            return ScheduleDecision::Discard;
        }
        if faults.delay > 0.0 && self.rng.random_range(0.0..1.0f64) < faults.delay {
            let frac: f64 = self.rng.random_range(0.0..1.0);
            return ScheduleDecision::Delay(SimTime(
                (faults.delay_by.as_micros() as f64 * frac) as u64,
            ));
        }
        if faults.duplicate > 0.0 && self.rng.random_range(0.0..1.0f64) < faults.duplicate {
            return ScheduleDecision::Duplicate;
        }
        ScheduleDecision::Pass
    }
}

enum ScheduleDecision {
    Pass,
    Discard,
    Delay(SimTime),
    Duplicate,
}

/// The deterministic discrete-event simulator.
///
/// Owns the actors, the event queue, and the network state. Use
/// [`Sim::run_until`] to advance virtual time. Cloning a `Sim`
/// snapshots the whole world (actors, queue, network, RNG), which is
/// how [`crate::explore::Explorer`] branches at choice points.
#[derive(Debug)]
pub struct Sim<A: Actor> {
    nodes: Vec<A>,
    net: NetState,
    queue: BinaryHeap<Reverse<(EventKey, usize)>>,
    events: Vec<Option<Event<A::Msg>>>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    stats: SimStats,
    started: bool,
    schedule: Option<ScheduleState<A::Msg>>,
}

impl<A: Actor + Clone> Clone for Sim<A> {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            net: self.net.clone(),
            queue: self.queue.clone(),
            events: self.events.clone(),
            now: self.now,
            seq: self.seq,
            rng: self.rng.clone(),
            stats: self.stats,
            started: self.started,
            schedule: self.schedule.clone(),
        }
    }
}

impl<A: Actor> Sim<A> {
    /// Creates a simulation over `nodes`, whose index is their
    /// [`NodeId`].
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` does not match the network config's
    /// node count.
    pub fn new(net: NetConfig, seed: u64, nodes: Vec<A>) -> Self {
        assert_eq!(
            net.node_count(),
            nodes.len(),
            "network config and node list disagree"
        );
        Self {
            nodes,
            net: NetState::new(net),
            queue: BinaryHeap::new(),
            events: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            stats: SimStats::default(),
            started: false,
            schedule: None,
        }
    }

    /// Enables the randomized schedule tier: every subsequent send is
    /// rolled against `dist` (per-message-class discard / delay /
    /// duplicate probabilities) using a dedicated RNG seeded from
    /// `dist.seed`. The latency RNG stream is untouched, so the same
    /// `dist` seed always yields the same perturbed schedule.
    pub fn set_schedule_dist(&mut self, dist: ScheduleDist)
    where
        A::Msg: MsgClass,
    {
        self.schedule = Some(ScheduleState {
            rng: StdRng::seed_from_u64(dist.seed),
            classify: <A::Msg as MsgClass>::msg_class,
            dist,
        });
    }

    /// Overrides the network's latency jitter fraction. Exploration
    /// sets this to zero so event times are a pure function of the
    /// topology and state hashes of converging schedules dedup.
    pub fn set_jitter(&mut self, frac: f64) {
        self.net.config.jitter_frac = frac;
    }

    /// Schedules every action in `plan`.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for &(at, action) in plan.entries() {
            self.push_event(at, EventKind::Fault(action));
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Immutable access to a node's actor state.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &A {
        &self.nodes[id.0]
    }

    /// Mutable access to a node's actor state (fault/behaviour
    /// injection between runs).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut A {
        &mut self.nodes[id.0]
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[A] {
        &self.nodes
    }

    /// Whether a node is currently crashed.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.net.crashed_nodes.contains(&id)
    }

    /// Whether a site is currently isolated.
    pub fn is_isolated(&self, site: SiteId) -> bool {
        self.net.isolated_sites.contains(&site)
    }

    /// The network configuration.
    pub fn net_config(&self) -> &NetConfig {
        &self.net.config
    }

    /// Crashes a node immediately.
    pub fn crash_node(&mut self, id: NodeId) {
        self.net.crashed_nodes.insert(id);
    }

    /// Crashes all nodes in a site immediately.
    pub fn crash_site(&mut self, site: SiteId) {
        for n in self.net.config.nodes_in_site(site) {
            self.net.crashed_nodes.insert(n);
        }
    }

    /// Isolates a site immediately.
    pub fn isolate_site(&mut self, site: SiteId) {
        self.net.isolated_sites.insert(site);
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind<A::Msg>) {
        let idx = self.events.len();
        self.events.push(Some(Event { at, kind }));
        self.queue.push(Reverse((EventKey(at, self.seq), idx)));
        self.seq += 1;
    }

    fn dispatch_commands(&mut self, origin: NodeId, commands: Vec<Command<A::Msg>>) {
        for cmd in commands {
            match cmd {
                Command::Send { to, msg } => {
                    if to.0 >= self.nodes.len() {
                        self.stats.dropped += 1;
                        continue;
                    }
                    // Deliverability is judged once, at delivery time
                    // (see `execute_event`): a send issued during a
                    // brief isolation still arrives if the partition
                    // heals before the latency window elapses, and
                    // each logical drop is counted exactly once.
                    let mut copies = 1u32;
                    let mut extra = SimTime::ZERO;
                    if let Some(sched) = self.schedule.as_mut() {
                        match sched.decide(&msg) {
                            ScheduleDecision::Pass => {}
                            ScheduleDecision::Discard => {
                                self.stats.schedule_discards += 1;
                                self.stats.dropped += 1;
                                continue;
                            }
                            ScheduleDecision::Delay(by) => {
                                self.stats.schedule_delays += 1;
                                extra = by;
                            }
                            ScheduleDecision::Duplicate => {
                                self.stats.schedule_duplicates += 1;
                                copies = 2;
                            }
                        }
                    }
                    for _ in 0..copies {
                        let latency = if to == origin {
                            SimTime::from_millis(0.05)
                        } else {
                            self.net.latency(origin, to, &mut self.rng)
                        };
                        self.push_event(
                            self.now + latency + extra,
                            EventKind::Deliver {
                                from: origin,
                                to,
                                msg: msg.clone(),
                            },
                        );
                    }
                }
                Command::Timer { delay, id } => {
                    self.push_event(self.now + delay, EventKind::Timer { node: origin, id });
                }
            }
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let node = NodeId(i);
            if self.net.crashed_nodes.contains(&node) {
                continue;
            }
            let mut commands = Vec::new();
            {
                let mut ctx = Ctx {
                    now: self.now,
                    self_id: node,
                    commands: &mut commands,
                };
                self.nodes[i].on_start(&mut ctx);
            }
            self.dispatch_commands(node, commands);
        }
    }

    /// Executes one event against the current world state. Time is
    /// advanced monotonically (`max(now, event.at)`) so the explorer
    /// may run near-simultaneous events out of heap order — the
    /// reordering models latency jitter without consuming RNG draws.
    pub(crate) fn execute_event(&mut self, event: Event<A::Msg>) {
        self.now = self.now.max(event.at);
        match event.kind {
            EventKind::Deliver { from, to, msg } => {
                if !self.net.deliverable(from, to) {
                    // Crash or partition while in flight.
                    self.stats.dropped += 1;
                    return;
                }
                self.stats.delivered += 1;
                let mut commands = Vec::new();
                {
                    let mut ctx = Ctx {
                        now: self.now,
                        self_id: to,
                        commands: &mut commands,
                    };
                    self.nodes[to.0].on_message(from, msg, &mut ctx);
                }
                self.dispatch_commands(to, commands);
            }
            EventKind::Timer { node, id } => {
                if self.net.crashed_nodes.contains(&node) {
                    // A crashed node's pending timers do not fire,
                    // but they are accounted for rather than
                    // silently vanishing.
                    self.stats.timers_suppressed += 1;
                    return;
                }
                self.stats.timers_fired += 1;
                let mut commands = Vec::new();
                {
                    let mut ctx = Ctx {
                        now: self.now,
                        self_id: node,
                        commands: &mut commands,
                    };
                    self.nodes[node.0].on_timer(id, &mut ctx);
                }
                self.dispatch_commands(node, commands);
            }
            EventKind::Fault(action) => {
                self.stats.faults_applied += 1;
                match action {
                    FaultAction::CrashNode(n) => {
                        self.net.crashed_nodes.insert(n);
                    }
                    FaultAction::CrashSite(s) => {
                        for n in self.net.config.nodes_in_site(s) {
                            self.net.crashed_nodes.insert(n);
                        }
                    }
                    FaultAction::IsolateSite(s) => {
                        self.net.isolated_sites.insert(s);
                    }
                    FaultAction::HealSite(s) => {
                        self.net.isolated_sites.remove(&s);
                    }
                }
            }
        }
    }

    /// Runs until the queue is exhausted or virtual time reaches
    /// `deadline`, whichever comes first. Returns the stats.
    pub fn run_until(&mut self, deadline: SimTime) -> SimStats {
        let entry_stats = self.stats;
        self.start_if_needed();
        while let Some(&Reverse((EventKey(at, _), idx))) = self.queue.peek() {
            if at > deadline {
                break;
            }
            self.queue.pop();
            let Some(event) = self.events[idx].take() else {
                continue;
            };
            self.execute_event(event);
        }
        // Stats are cumulative across run_until calls; report only
        // this call's work to the observability layer.
        ct_obs::add(
            ct_obs::names::SIMNET_EVENTS_DISPATCHED,
            (self.stats.delivered - entry_stats.delivered)
                + (self.stats.timers_fired - entry_stats.timers_fired)
                + (self.stats.faults_applied - entry_stats.faults_applied),
        );
        ct_obs::add(
            ct_obs::names::SIMNET_MESSAGES_DROPPED,
            self.stats.dropped - entry_stats.dropped,
        );
        ct_obs::add(
            ct_obs::names::SIMNET_TIMERS_SUPPRESSED,
            self.stats.timers_suppressed - entry_stats.timers_suppressed,
        );
        ct_obs::add(
            ct_obs::names::SIMNET_SCHEDULE_DISCARDS,
            self.stats.schedule_discards - entry_stats.schedule_discards,
        );
        ct_obs::add(
            ct_obs::names::SIMNET_SCHEDULE_DELAYS,
            self.stats.schedule_delays - entry_stats.schedule_delays,
        );
        ct_obs::add(
            ct_obs::names::SIMNET_SCHEDULE_DUPLICATES,
            self.stats.schedule_duplicates - entry_stats.schedule_duplicates,
        );
        self.stats
    }

    // ---- crate-internal surface for the explorer -------------------

    /// Runs every actor's `on_start` if that has not happened yet.
    pub(crate) fn start_now(&mut self) {
        self.start_if_needed();
    }

    /// The earliest live pending events: all events within `window`
    /// of the earliest one, capped at `cap`, ignoring events past
    /// `horizon`. Tombstoned heap entries met on the way are skimmed
    /// off; the returned entries stay queued. Each tuple is
    /// `(time, seq, event index)` in `(time, seq)` order.
    pub(crate) fn peek_ready(
        &mut self,
        window: SimTime,
        cap: usize,
        horizon: SimTime,
    ) -> Vec<(SimTime, u64, usize)> {
        let mut popped: Vec<(EventKey, usize)> = Vec::new();
        let mut out = Vec::new();
        while let Some(&Reverse((key, idx))) = self.queue.peek() {
            if self.events[idx].is_none() {
                self.queue.pop();
                continue;
            }
            let EventKey(at, seq) = key;
            if at > horizon || out.len() >= cap {
                break;
            }
            if let Some(&(t0, _, _)) = out.first() {
                if at > t0 + window {
                    break;
                }
            }
            self.queue.pop();
            popped.push((key, idx));
            out.push((at, seq, idx));
        }
        for (key, idx) in popped {
            self.queue.push(Reverse((key, idx)));
        }
        out
    }

    /// Removes and returns the event stored at `idx`, leaving a
    /// tombstone; its stale heap entry is skipped on a later pop.
    pub(crate) fn take_event(&mut self, idx: usize) -> Option<Event<A::Msg>> {
        self.events[idx].take()
    }

    /// All live pending events as `(time, event index)`, sorted by
    /// `(time, seq)`. Used for state hashing at choice points.
    pub(crate) fn pending_snapshot(&self) -> Vec<(SimTime, usize)> {
        let mut live: Vec<(SimTime, u64, usize)> = self
            .queue
            .iter()
            .filter_map(|&Reverse((EventKey(at, seq), idx))| {
                self.events[idx].as_ref().map(|_| (at, seq, idx))
            })
            .collect();
        live.sort_unstable();
        live.into_iter().map(|(at, _, idx)| (at, idx)).collect()
    }

    /// The kind of the live event stored at `idx`, if any.
    pub(crate) fn event_kind(&self, idx: usize) -> Option<&EventKind<A::Msg>> {
        self.events[idx].as_ref().map(|e| &e.kind)
    }

    /// The live network state (explorer hashing and property checks).
    pub(crate) fn net(&self) -> &NetState {
        &self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gossip counter: each node forwards the token once, appending
    /// its id, and remembers everything it saw.
    #[derive(Debug, Default)]
    struct Relay {
        next: Option<NodeId>,
        seen: Vec<u64>,
        kick_off: bool,
    }

    impl Actor for Relay {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.kick_off {
                if let Some(next) = self.next {
                    ctx.send(next, 1);
                }
            }
        }

        fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
            self.seen.push(msg);
            if msg < 10 {
                if let Some(next) = self.next {
                    ctx.send(next, msg + 1);
                }
            }
        }
    }

    fn ring(n: usize) -> Vec<Relay> {
        (0..n)
            .map(|i| Relay {
                next: Some(NodeId((i + 1) % n)),
                seen: Vec::new(),
                kick_off: i == 0,
            })
            .collect()
    }

    #[test]
    fn messages_circulate_a_ring() {
        let mut sim = Sim::new(NetConfig::single_site(3), 1, ring(3));
        let stats = sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(stats.delivered, 10);
        // Token values 1..=10 distributed around the ring.
        let all: Vec<u64> = sim.nodes().iter().flat_map(|n| n.seen.clone()).collect();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut sim = Sim::new(NetConfig::multi_site(&[2, 1]), 9, ring(3));
            sim.run_until(SimTime::from_secs(10.0));
            (
                sim.stats(),
                sim.now(),
                sim.nodes()
                    .iter()
                    .map(|n| n.seen.clone())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crashed_node_breaks_the_ring() {
        let mut sim = Sim::new(NetConfig::single_site(3), 1, ring(3));
        sim.crash_node(NodeId(2));
        let stats = sim.run_until(SimTime::from_secs(10.0));
        // n0 -> n1 delivered; n1 -> n2 dropped.
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 1);
        // Relays set no timers, so nothing is suppressed either.
        assert_eq!(stats.timers_suppressed, 0);
    }

    #[test]
    fn crashed_node_timers_are_suppressed_not_lost() {
        #[derive(Debug, Default, Clone)]
        struct Ticker {
            fired: u64,
        }
        impl Actor for Ticker {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimTime::from_millis(100.0), 1);
            }
            fn on_message(&mut self, _: NodeId, _: (), _: &mut Ctx<'_, ()>) {}
            fn on_timer(&mut self, _: u64, ctx: &mut Ctx<'_, ()>) {
                self.fired += 1;
                ctx.set_timer(SimTime::from_millis(100.0), 1);
            }
        }
        let mut sim = Sim::new(NetConfig::single_site(2), 1, vec![Ticker::default(); 2]);
        let plan = FaultPlan::new().at(
            SimTime::from_millis(250.0),
            FaultAction::CrashNode(NodeId(1)),
        );
        sim.apply_fault_plan(&plan);
        let stats = sim.run_until(SimTime::from_secs(1.0));
        // Node 0 ticks 10 times; node 1 ticks at 100 and 200 ms, then
        // its pending 300 ms timer is suppressed by the crash — it is
        // accounted, not silently dropped, and it does not re-arm.
        assert_eq!(sim.node(NodeId(0)).fired, 10);
        assert_eq!(sim.node(NodeId(1)).fired, 2);
        assert_eq!(stats.timers_fired, 12);
        assert_eq!(stats.timers_suppressed, 1);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn heal_before_arrival_lets_in_flight_sends_through() {
        // Ring across two sites: 0,1 in site 0; 2 in site 1. Site 1
        // starts isolated and heals at 5 ms. n1's send to n2 is
        // issued at ~1 ms (during the isolation) but arrives at
        // ~11 ms (after the heal): deliverability is a delivery-time
        // question, so the token must survive and circle the ring.
        let mut sim = Sim::new(NetConfig::multi_site(&[2, 1]), 1, ring(3));
        sim.isolate_site(SiteId(1));
        let plan = FaultPlan::new().at(SimTime::from_millis(5.0), FaultAction::HealSite(SiteId(1)));
        sim.apply_fault_plan(&plan);
        let stats = sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(stats.delivered, 10);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn scheduled_fault_takes_effect_at_its_time() {
        let mut sim = Sim::new(NetConfig::single_site(3), 1, ring(3));
        // Crash node 2 at t=0: the ring dies quickly.
        let plan = FaultPlan::new().at(SimTime::ZERO, FaultAction::CrashNode(NodeId(2)));
        sim.apply_fault_plan(&plan);
        let stats = sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(stats.faults_applied, 1);
        assert!(stats.delivered <= 2);
    }

    #[test]
    fn site_isolation_blocks_cross_site_hops() {
        // Ring across two sites: 0,1 in site 0; 2 in site 1.
        let mut sim = Sim::new(NetConfig::multi_site(&[2, 1]), 1, ring(3));
        sim.isolate_site(SiteId(1));
        let stats = sim.run_until(SimTime::from_secs(10.0));
        // n0 -> n1 ok (same site), n1 -> n2 dropped (cross-site).
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn heal_restores_connectivity() {
        let mut sim = Sim::new(NetConfig::multi_site(&[2, 1]), 1, ring(3));
        let plan = FaultPlan::new()
            .at(SimTime::ZERO, FaultAction::IsolateSite(SiteId(1)))
            .at(SimTime::from_secs(1.0), FaultAction::HealSite(SiteId(1)));
        sim.apply_fault_plan(&plan);
        sim.run_until(SimTime::from_millis(500.0));
        assert!(sim.is_isolated(SiteId(1)));
        sim.run_until(SimTime::from_secs(2.0));
        assert!(!sim.is_isolated(SiteId(1)));
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Debug, Default)]
        struct TimerBox {
            fired: Vec<u64>,
        }
        impl Actor for TimerBox {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimTime::from_millis(30.0), 3);
                ctx.set_timer(SimTime::from_millis(10.0), 1);
                ctx.set_timer(SimTime::from_millis(20.0), 2);
            }
            fn on_message(&mut self, _: NodeId, _: (), _: &mut Ctx<'_, ()>) {}
            fn on_timer(&mut self, id: u64, _: &mut Ctx<'_, ()>) {
                self.fired.push(id);
            }
        }
        let mut sim = Sim::new(NetConfig::single_site(1), 1, vec![TimerBox::default()]);
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(sim.node(NodeId(0)).fired, vec![1, 2, 3]);
        assert_eq!(sim.stats().timers_fired, 3);
    }

    #[test]
    fn deadline_pauses_and_resumes() {
        let mut sim = Sim::new(NetConfig::single_site(3), 1, ring(3));
        let early = sim.run_until(SimTime::from_millis(1.5));
        assert!(early.delivered < 10);
        let late = sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(late.delivered, 10);
    }
}
