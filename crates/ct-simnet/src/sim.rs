//! The discrete-event kernel.

use crate::actor::{Actor, Command, Ctx, NodeId, SiteId};
use crate::fault::{FaultAction, FaultPlan};
use crate::net::{NetConfig, NetState};
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What an event does when it fires.
#[derive(Debug, Clone)]
enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, id: u64 },
    Fault(FaultAction),
}

/// A scheduled event; ordered by `(time, seq)` so execution is total
/// and deterministic.
#[derive(Debug, Clone)]
struct Event<M> {
    at: SimTime,
    kind: EventKind<M>,
}

/// Key used for heap ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey(SimTime, u64);

/// Counters describing a finished (or paused) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Messages handed to `on_message`.
    pub delivered: u64,
    /// Messages dropped by crashes or partitions.
    pub dropped: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Fault actions applied.
    pub faults_applied: u64,
}

/// The deterministic discrete-event simulator.
///
/// Owns the actors, the event queue, and the network state. Use
/// [`Sim::run_until`] to advance virtual time.
#[derive(Debug)]
pub struct Sim<A: Actor> {
    nodes: Vec<A>,
    net: NetState,
    queue: BinaryHeap<Reverse<(EventKey, usize)>>,
    events: Vec<Option<Event<A::Msg>>>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    stats: SimStats,
    started: bool,
}

impl<A: Actor> Sim<A> {
    /// Creates a simulation over `nodes`, whose index is their
    /// [`NodeId`].
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` does not match the network config's
    /// node count.
    pub fn new(net: NetConfig, seed: u64, nodes: Vec<A>) -> Self {
        assert_eq!(
            net.node_count(),
            nodes.len(),
            "network config and node list disagree"
        );
        Self {
            nodes,
            net: NetState::new(net),
            queue: BinaryHeap::new(),
            events: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            stats: SimStats::default(),
            started: false,
        }
    }

    /// Schedules every action in `plan`.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for &(at, action) in plan.entries() {
            self.push_event(at, EventKind::Fault(action));
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Immutable access to a node's actor state.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &A {
        &self.nodes[id.0]
    }

    /// Mutable access to a node's actor state (fault/behaviour
    /// injection between runs).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut A {
        &mut self.nodes[id.0]
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[A] {
        &self.nodes
    }

    /// Whether a node is currently crashed.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.net.crashed_nodes.contains(&id)
    }

    /// Whether a site is currently isolated.
    pub fn is_isolated(&self, site: SiteId) -> bool {
        self.net.isolated_sites.contains(&site)
    }

    /// The network configuration.
    pub fn net_config(&self) -> &NetConfig {
        &self.net.config
    }

    /// Crashes a node immediately.
    pub fn crash_node(&mut self, id: NodeId) {
        self.net.crashed_nodes.insert(id);
    }

    /// Crashes all nodes in a site immediately.
    pub fn crash_site(&mut self, site: SiteId) {
        for n in self.net.config.nodes_in_site(site) {
            self.net.crashed_nodes.insert(n);
        }
    }

    /// Isolates a site immediately.
    pub fn isolate_site(&mut self, site: SiteId) {
        self.net.isolated_sites.insert(site);
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind<A::Msg>) {
        let idx = self.events.len();
        self.events.push(Some(Event { at, kind }));
        self.queue.push(Reverse((EventKey(at, self.seq), idx)));
        self.seq += 1;
    }

    fn dispatch_commands(&mut self, origin: NodeId, commands: Vec<Command<A::Msg>>) {
        for cmd in commands {
            match cmd {
                Command::Send { to, msg } => {
                    if to.0 >= self.nodes.len() || !self.net.deliverable(origin, to) {
                        self.stats.dropped += 1;
                        continue;
                    }
                    let latency = if to == origin {
                        SimTime::from_millis(0.05)
                    } else {
                        self.net.latency(origin, to, &mut self.rng)
                    };
                    self.push_event(
                        self.now + latency,
                        EventKind::Deliver {
                            from: origin,
                            to,
                            msg,
                        },
                    );
                }
                Command::Timer { delay, id } => {
                    self.push_event(self.now + delay, EventKind::Timer { node: origin, id });
                }
            }
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let node = NodeId(i);
            if self.net.crashed_nodes.contains(&node) {
                continue;
            }
            let mut commands = Vec::new();
            {
                let mut ctx = Ctx {
                    now: self.now,
                    self_id: node,
                    commands: &mut commands,
                };
                self.nodes[i].on_start(&mut ctx);
            }
            self.dispatch_commands(node, commands);
        }
    }

    /// Runs until the queue is exhausted or virtual time reaches
    /// `deadline`, whichever comes first. Returns the stats.
    pub fn run_until(&mut self, deadline: SimTime) -> SimStats {
        let entry_stats = self.stats;
        self.start_if_needed();
        while let Some(&Reverse((EventKey(at, _), idx))) = self.queue.peek() {
            if at > deadline {
                break;
            }
            self.queue.pop();
            let Some(event) = self.events[idx].take() else {
                continue;
            };
            self.now = event.at;
            match event.kind {
                EventKind::Deliver { from, to, msg } => {
                    if !self.net.deliverable(from, to) {
                        // State changed since the send (crash mid-flight).
                        self.stats.dropped += 1;
                        continue;
                    }
                    self.stats.delivered += 1;
                    let mut commands = Vec::new();
                    {
                        let mut ctx = Ctx {
                            now: self.now,
                            self_id: to,
                            commands: &mut commands,
                        };
                        self.nodes[to.0].on_message(from, msg, &mut ctx);
                    }
                    self.dispatch_commands(to, commands);
                }
                EventKind::Timer { node, id } => {
                    if self.net.crashed_nodes.contains(&node) {
                        continue;
                    }
                    self.stats.timers_fired += 1;
                    let mut commands = Vec::new();
                    {
                        let mut ctx = Ctx {
                            now: self.now,
                            self_id: node,
                            commands: &mut commands,
                        };
                        self.nodes[node.0].on_timer(id, &mut ctx);
                    }
                    self.dispatch_commands(node, commands);
                }
                EventKind::Fault(action) => {
                    self.stats.faults_applied += 1;
                    match action {
                        FaultAction::CrashNode(n) => {
                            self.net.crashed_nodes.insert(n);
                        }
                        FaultAction::CrashSite(s) => {
                            for n in self.net.config.nodes_in_site(s) {
                                self.net.crashed_nodes.insert(n);
                            }
                        }
                        FaultAction::IsolateSite(s) => {
                            self.net.isolated_sites.insert(s);
                        }
                        FaultAction::HealSite(s) => {
                            self.net.isolated_sites.remove(&s);
                        }
                    }
                }
            }
        }
        // Stats are cumulative across run_until calls; report only
        // this call's work to the observability layer.
        ct_obs::add(
            ct_obs::names::SIMNET_EVENTS_DISPATCHED,
            (self.stats.delivered - entry_stats.delivered)
                + (self.stats.timers_fired - entry_stats.timers_fired)
                + (self.stats.faults_applied - entry_stats.faults_applied),
        );
        ct_obs::add(
            ct_obs::names::SIMNET_MESSAGES_DROPPED,
            self.stats.dropped - entry_stats.dropped,
        );
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gossip counter: each node forwards the token once, appending
    /// its id, and remembers everything it saw.
    #[derive(Debug, Default)]
    struct Relay {
        next: Option<NodeId>,
        seen: Vec<u64>,
        kick_off: bool,
    }

    impl Actor for Relay {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.kick_off {
                if let Some(next) = self.next {
                    ctx.send(next, 1);
                }
            }
        }

        fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
            self.seen.push(msg);
            if msg < 10 {
                if let Some(next) = self.next {
                    ctx.send(next, msg + 1);
                }
            }
        }
    }

    fn ring(n: usize) -> Vec<Relay> {
        (0..n)
            .map(|i| Relay {
                next: Some(NodeId((i + 1) % n)),
                seen: Vec::new(),
                kick_off: i == 0,
            })
            .collect()
    }

    #[test]
    fn messages_circulate_a_ring() {
        let mut sim = Sim::new(NetConfig::single_site(3), 1, ring(3));
        let stats = sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(stats.delivered, 10);
        // Token values 1..=10 distributed around the ring.
        let all: Vec<u64> = sim.nodes().iter().flat_map(|n| n.seen.clone()).collect();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut sim = Sim::new(NetConfig::multi_site(&[2, 1]), 9, ring(3));
            sim.run_until(SimTime::from_secs(10.0));
            (
                sim.stats(),
                sim.now(),
                sim.nodes()
                    .iter()
                    .map(|n| n.seen.clone())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crashed_node_breaks_the_ring() {
        let mut sim = Sim::new(NetConfig::single_site(3), 1, ring(3));
        sim.crash_node(NodeId(2));
        let stats = sim.run_until(SimTime::from_secs(10.0));
        // n0 -> n1 delivered; n1 -> n2 dropped.
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn scheduled_fault_takes_effect_at_its_time() {
        let mut sim = Sim::new(NetConfig::single_site(3), 1, ring(3));
        // Crash node 2 at t=0: the ring dies quickly.
        let plan = FaultPlan::new().at(SimTime::ZERO, FaultAction::CrashNode(NodeId(2)));
        sim.apply_fault_plan(&plan);
        let stats = sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(stats.faults_applied, 1);
        assert!(stats.delivered <= 2);
    }

    #[test]
    fn site_isolation_blocks_cross_site_hops() {
        // Ring across two sites: 0,1 in site 0; 2 in site 1.
        let mut sim = Sim::new(NetConfig::multi_site(&[2, 1]), 1, ring(3));
        sim.isolate_site(SiteId(1));
        let stats = sim.run_until(SimTime::from_secs(10.0));
        // n0 -> n1 ok (same site), n1 -> n2 dropped (cross-site).
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn heal_restores_connectivity() {
        let mut sim = Sim::new(NetConfig::multi_site(&[2, 1]), 1, ring(3));
        let plan = FaultPlan::new()
            .at(SimTime::ZERO, FaultAction::IsolateSite(SiteId(1)))
            .at(SimTime::from_secs(1.0), FaultAction::HealSite(SiteId(1)));
        sim.apply_fault_plan(&plan);
        sim.run_until(SimTime::from_millis(500.0));
        assert!(sim.is_isolated(SiteId(1)));
        sim.run_until(SimTime::from_secs(2.0));
        assert!(!sim.is_isolated(SiteId(1)));
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Debug, Default)]
        struct TimerBox {
            fired: Vec<u64>,
        }
        impl Actor for TimerBox {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimTime::from_millis(30.0), 3);
                ctx.set_timer(SimTime::from_millis(10.0), 1);
                ctx.set_timer(SimTime::from_millis(20.0), 2);
            }
            fn on_message(&mut self, _: NodeId, _: (), _: &mut Ctx<'_, ()>) {}
            fn on_timer(&mut self, id: u64, _: &mut Ctx<'_, ()>) {
                self.fired.push(id);
            }
        }
        let mut sim = Sim::new(NetConfig::single_site(1), 1, vec![TimerBox::default()]);
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(sim.node(NodeId(0)).fired, vec![1, 2, 3]);
        assert_eq!(sim.stats().timers_fired, 3);
    }

    #[test]
    fn deadline_pauses_and_resumes() {
        let mut sim = Sim::new(NetConfig::single_site(3), 1, ring(3));
        let early = sim.run_until(SimTime::from_millis(1.5));
        assert!(early.delivered < 10);
        let late = sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(late.delivered, 10);
    }
}
