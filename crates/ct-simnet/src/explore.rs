//! Bounded exhaustive schedule exploration and randomized schedule
//! perturbation.
//!
//! The kernel in [`crate::sim`] replays *one* seeded schedule. This
//! module adds two complementary ways to ask "could a different
//! ordering have changed the outcome?":
//!
//! 1. [`Explorer`] — a stateright-style bounded exhaustive search.
//!    Instead of always firing the earliest pending event, the
//!    explorer treats near-simultaneous *conflicting* events (two
//!    events addressed to the same node, or a fault racing anything)
//!    as a **choice point** and explores every firing order by DFS,
//!    deduplicating revisited states with a 128-bit
//!    [`StableHasher`] digest of the whole world. Events whose
//!    targets differ commute exactly (their handlers touch disjoint
//!    actors), so skipping them is a partial-order reduction, not a
//!    loss of coverage.
//! 2. [`ScheduleDist`] — a seeded randomized tier for campaigns past
//!    the exhaustive horizon: per-message-class discard / delay /
//!    duplicate probabilities applied at send time
//!    (see [`Sim::set_schedule_dist`]). The same seed always yields
//!    the same perturbed schedule, so any counterexample found by a
//!    campaign is replayable from its seed alone.
//!
//! Both tiers report through ct-obs (`simnet.explore.*` and
//! `simnet.schedule.*`) and both are single-threaded and
//! deterministic: counters are identical across `CT_THREADS`.

use crate::actor::Actor;
use crate::sim::{EventKind, Sim};
use crate::time::SimTime;
use ct_store::{Digest, StableHasher};
use std::collections::HashSet;

/// Hashing of actor and message state into a [`StableHasher`].
///
/// The digest decides which explored states are "the same", so it
/// should cover every field that can influence future behaviour.
/// Absolute timestamps held by actors are deliberately *excluded* by
/// convention (relative event times are hashed by the explorer
/// itself); this merges states that differ only in wall-clock
/// offsets and is part of why the check is bounded rather than
/// complete.
pub trait StateHash {
    /// Feeds this value's behaviour-relevant state into `h`.
    fn state_hash(&self, h: &mut StableHasher);
}

/// Classification of messages for the randomized schedule tier.
pub trait MsgClass {
    /// A small, stable class label (e.g. `"propose"`, `"heartbeat"`).
    fn msg_class(&self) -> &'static str;
}

/// Per-class fault probabilities for [`ScheduleDist`]. All default
/// to zero (no perturbation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassFaults {
    /// Probability a send is discarded outright.
    pub discard: f64,
    /// Probability a send is delayed by up to `delay_by`.
    pub delay: f64,
    /// Maximum extra latency for delayed sends (uniform in
    /// `[0, delay_by)`).
    pub delay_by: SimTime,
    /// Probability a send is delivered twice.
    pub duplicate: f64,
}

/// A seeded distribution over schedule perturbations, by message
/// class. Build with [`ScheduleDist::new`] and the [`class`]
/// builder; install with [`Sim::set_schedule_dist`].
///
/// [`class`]: ScheduleDist::class
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleDist {
    /// Seed of the dedicated schedule RNG stream.
    pub seed: u64,
    /// Faults applied to classes without an explicit entry.
    pub default: ClassFaults,
    /// Per-class overrides, first match wins.
    pub per_class: Vec<(&'static str, ClassFaults)>,
}

impl ScheduleDist {
    /// A distribution that perturbs nothing.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            default: ClassFaults::default(),
            per_class: Vec::new(),
        }
    }

    /// A distribution applying `faults` to every message class.
    pub fn uniform(seed: u64, faults: ClassFaults) -> Self {
        Self {
            seed,
            default: faults,
            per_class: Vec::new(),
        }
    }

    /// Overrides the faults for one message class.
    pub fn class(mut self, name: &'static str, faults: ClassFaults) -> Self {
        self.per_class.push((name, faults));
        self
    }

    /// The same distribution under a different seed (campaigns derive
    /// one schedule per run this way).
    pub fn with_seed(&self, seed: u64) -> Self {
        let mut d = self.clone();
        d.seed = seed;
        d
    }

    /// The fault probabilities for a message class.
    pub fn faults_for(&self, class: &str) -> ClassFaults {
        self.per_class
            .iter()
            .find(|(name, _)| *name == class)
            .map(|&(_, f)| f)
            .unwrap_or(self.default)
    }
}

/// Bounds on an exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreConfig {
    /// Virtual-time horizon: events past this are not executed and a
    /// state with nothing left before the horizon is terminal.
    pub horizon: SimTime,
    /// Maximum number of choice points along any one path. Deeper
    /// conflicts fall back to heap order (counted as
    /// `depth_truncated`).
    pub max_depth: usize,
    /// Maximum branching factor at a choice point; conflicts beyond
    /// this fall back to heap order (counted as `branch_capped`).
    pub max_branch: usize,
    /// Two events are considered near-simultaneous — candidates for
    /// reordering — when their times are within this window. Matches
    /// the latency jitter the reordering stands in for.
    pub commute_window: SimTime,
    /// Hard cap on executed events across the whole search; the
    /// search stops (reported as `truncated`) when it is reached.
    pub max_states: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            horizon: SimTime::from_secs(30.0),
            max_depth: 3,
            max_branch: 3,
            // Inter-site latency 10 ms at ±20% jitter spans 4 ms.
            commute_window: SimTime::from_millis(4.0),
            max_states: 5_000_000,
        }
    }
}

/// Search counters for one exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExploreStats {
    /// Events executed across all explored paths.
    pub visited: u64,
    /// Choice points branched on.
    pub choice_points: u64,
    /// Subtrees skipped because their state digest was already seen.
    pub pruned: u64,
    /// Conflicts past the depth bound, resolved by heap order.
    pub depth_truncated: u64,
    /// Choice points whose ready set was capped at `max_branch`.
    pub branch_capped: u64,
    /// Terminal states reached (horizon or quiescence).
    pub terminals: u64,
    /// Deepest choice-point depth reached.
    pub max_depth_reached: usize,
    /// Whether the search hit `max_states` and stopped early.
    pub truncated: bool,
}

/// A property violation found on some explored path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreViolation {
    /// Short property name (e.g. `"agreement"`).
    pub property: String,
    /// Human-readable description of what failed.
    pub detail: String,
    /// Branch indices taken at each choice point to reach the
    /// violating state; replay with [`Explorer::replay`].
    pub trace: Vec<usize>,
    /// Virtual time of the violating state.
    pub at: SimTime,
}

/// The result of an exploration: counters, violations, and one
/// checker-produced summary per terminal state.
#[derive(Debug, Clone)]
pub struct ExploreReport<R> {
    /// Search counters.
    pub stats: ExploreStats,
    /// All property violations found, in DFS order.
    pub violations: Vec<ExploreViolation>,
    /// Terminal-state summaries, in DFS order.
    pub terminals: Vec<R>,
}

/// Bounded exhaustive interleaving search over a [`Sim`].
///
/// The explorer owns a *root* simulation (cloned per branch) and
/// walks the tree of conflicting-event orderings depth-first. Two
/// checker callbacks drive property evaluation:
///
/// * `on_step(&Sim)` after every executed event — return
///   `Some((property, detail))` to record a violation and stop
///   extending that path;
/// * `on_terminal(&Sim)` at every terminal state — returns an
///   optional violation plus a summary value (e.g. a verdict) that
///   is collected into [`ExploreReport::terminals`].
pub struct Explorer<A: Actor + Clone> {
    root: Sim<A>,
    config: ExploreConfig,
}

impl<A> Explorer<A>
where
    A: Actor + Clone + StateHash,
    A::Msg: StateHash,
{
    /// Wraps `sim` (not yet started) for exploration under `config`.
    pub fn new(sim: Sim<A>, config: ExploreConfig) -> Self {
        Self { root: sim, config }
    }

    /// The exploration bounds.
    pub fn config(&self) -> &ExploreConfig {
        &self.config
    }

    /// Runs the bounded exhaustive search and reports the counters
    /// through ct-obs (`simnet.explore.*`).
    pub fn run<S, T, R>(&mut self, mut on_step: S, mut on_terminal: T) -> ExploreReport<R>
    where
        S: FnMut(&Sim<A>) -> Option<(String, String)>,
        T: FnMut(&Sim<A>) -> (Option<(String, String)>, R),
    {
        let mut root = self.root.clone();
        root.start_now();
        let mut search = Search {
            config: self.config,
            seen: HashSet::new(),
            stats: ExploreStats::default(),
            violations: Vec::new(),
            terminals: Vec::new(),
            trace: Vec::new(),
        };
        search.dfs(root, 0, &mut on_step, &mut on_terminal);
        ct_obs::add(ct_obs::names::SIMNET_EXPLORE_VISITED, search.stats.visited);
        ct_obs::add(ct_obs::names::SIMNET_EXPLORE_PRUNED, search.stats.pruned);
        ct_obs::add(
            ct_obs::names::SIMNET_EXPLORE_CHOICE_POINTS,
            search.stats.choice_points,
        );
        ct_obs::add(
            ct_obs::names::SIMNET_EXPLORE_DEPTH_TRUNCATED,
            search.stats.depth_truncated,
        );
        ct_obs::add(
            ct_obs::names::SIMNET_EXPLORE_TERMINALS,
            search.stats.terminals,
        );
        ExploreReport {
            stats: search.stats,
            violations: search.violations,
            terminals: search.terminals,
        }
    }

    /// Deterministically replays one explored path: at each choice
    /// point the branch index is taken from `trace` (heap order once
    /// the trace is exhausted) and the resulting simulation at the
    /// trace's end-of-horizon state is returned.
    pub fn replay(&self, trace: &[usize]) -> Sim<A> {
        let mut sim = self.root.clone();
        sim.start_now();
        let mut cursor = 0usize;
        let mut depth = 0usize;
        loop {
            let ready = sim.peek_ready(
                self.config.commute_window,
                self.config.max_branch,
                self.config.horizon,
            );
            if ready.is_empty() {
                return sim;
            }
            let choice =
                if ready.len() > 1 && depth < self.config.max_depth && has_conflict(&sim, &ready) {
                    depth += 1;
                    let c = trace.get(cursor).copied().unwrap_or(0);
                    cursor += 1;
                    c.min(ready.len() - 1)
                } else {
                    0
                };
            let idx = ready[choice].2;
            let event = sim.take_event(idx).expect("ready event is live");
            sim.execute_event(event);
        }
    }
}

/// Whether the ready window contains an actual ordering conflict:
/// two events addressed to the same node, or any fault action (which
/// races every delivery and timer). Windows without a conflict
/// commute — handlers touch disjoint actors — so they are executed
/// in heap order without branching.
fn has_conflict<A: Actor>(sim: &Sim<A>, ready: &[(SimTime, u64, usize)]) -> bool {
    let mut targets = Vec::with_capacity(ready.len());
    for &(_, _, idx) in ready {
        match sim.event_kind(idx) {
            Some(EventKind::Fault(_)) => return true,
            Some(EventKind::Deliver { to, .. }) => targets.push(to.0),
            Some(EventKind::Timer { node, .. }) => targets.push(node.0),
            None => {}
        }
    }
    targets.sort_unstable();
    targets.windows(2).any(|w| w[0] == w[1])
}

/// DFS bookkeeping for one `Explorer::run`.
struct Search<R> {
    config: ExploreConfig,
    seen: HashSet<Digest>,
    stats: ExploreStats,
    violations: Vec<ExploreViolation>,
    terminals: Vec<R>,
    trace: Vec<usize>,
}

impl<R> Search<R> {
    fn dfs<A, S, T>(&mut self, mut sim: Sim<A>, depth: usize, on_step: &mut S, on_terminal: &mut T)
    where
        A: Actor + Clone + StateHash,
        A::Msg: StateHash,
        S: FnMut(&Sim<A>) -> Option<(String, String)>,
        T: FnMut(&Sim<A>) -> (Option<(String, String)>, R),
    {
        self.stats.max_depth_reached = self.stats.max_depth_reached.max(depth);
        loop {
            if self.stats.visited >= self.config.max_states {
                self.stats.truncated = true;
                return;
            }
            let ready = sim.peek_ready(
                self.config.commute_window,
                self.config.max_branch,
                self.config.horizon,
            );
            if ready.is_empty() {
                // Horizon reached (or quiescent): terminal state.
                self.stats.terminals += 1;
                let (violation, summary) = on_terminal(&sim);
                if let Some((property, detail)) = violation {
                    self.record(property, detail, sim.now());
                }
                self.terminals.push(summary);
                return;
            }
            let conflict = ready.len() > 1 && has_conflict(&sim, &ready);
            if !conflict || depth >= self.config.max_depth {
                if conflict {
                    self.stats.depth_truncated += 1;
                }
                // Forced (or commuting) prefix: run in heap order.
                let idx = ready[0].2;
                let event = sim.take_event(idx).expect("ready event is live");
                sim.execute_event(event);
                self.stats.visited += 1;
                if let Some((property, detail)) = on_step(&sim) {
                    self.record(property, detail, sim.now());
                    return;
                }
                continue;
            }
            // Choice point: dedup, then branch over every order.
            self.stats.choice_points += 1;
            if ready.len() == self.config.max_branch {
                self.stats.branch_capped += 1;
            }
            if !self.seen.insert(state_digest(&sim)) {
                self.stats.pruned += 1;
                return;
            }
            for (branch, r) in ready.iter().enumerate() {
                let mut child = sim.clone();
                let event = child.take_event(r.2).expect("ready event is live");
                child.execute_event(event);
                self.stats.visited += 1;
                self.trace.push(branch);
                if let Some((property, detail)) = on_step(&child) {
                    self.record(property, detail, child.now());
                } else {
                    self.dfs(child, depth + 1, on_step, on_terminal);
                }
                self.trace.pop();
            }
            return;
        }
    }

    fn record(&mut self, property: String, detail: String, at: SimTime) {
        self.violations.push(ExploreViolation {
            property,
            detail,
            trace: self.trace.clone(),
            at,
        });
    }
}

/// Digest of the whole world: every actor's behaviour-relevant
/// state, the dynamic network state, and the live pending events
/// with times relative to the earliest pending one (so two schedules
/// converging on the same state modulo a time shift dedup).
fn state_digest<A>(sim: &Sim<A>) -> Digest
where
    A: Actor + StateHash,
    A::Msg: StateHash,
{
    let mut h = StableHasher::new();
    for node in sim.nodes() {
        node.state_hash(&mut h);
    }
    let net = sim.net();
    h.write_usize(net.crashed_nodes.len());
    for n in &net.crashed_nodes {
        h.write_usize(n.0);
    }
    h.write_usize(net.isolated_sites.len());
    for s in &net.isolated_sites {
        h.write_usize(s.0);
    }
    let pending = sim.pending_snapshot();
    let t0 = pending.first().map(|&(at, _)| at).unwrap_or(SimTime::ZERO);
    h.write_usize(pending.len());
    for (at, idx) in pending {
        h.write_u64((at - t0).as_micros());
        match sim.event_kind(idx) {
            Some(EventKind::Deliver { from, to, msg }) => {
                h.write_u8(0);
                h.write_usize(from.0);
                h.write_usize(to.0);
                msg.state_hash(&mut h);
            }
            Some(EventKind::Timer { node, id }) => {
                h.write_u8(1);
                h.write_usize(node.0);
                h.write_u64(*id);
            }
            Some(EventKind::Fault(action)) => {
                h.write_u8(2);
                fault_hash(action, &mut h);
            }
            None => h.write_u8(3),
        }
    }
    h.finish()
}

fn fault_hash(action: &crate::fault::FaultAction, h: &mut StableHasher) {
    use crate::fault::FaultAction::*;
    match action {
        CrashNode(n) => {
            h.write_u8(0);
            h.write_usize(n.0);
        }
        CrashSite(s) => {
            h.write_u8(1);
            h.write_usize(s.0);
        }
        IsolateSite(s) => {
            h.write_u8(2);
            h.write_usize(s.0);
        }
        HealSite(s) => {
            h.write_u8(3);
            h.write_usize(s.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Ctx, NodeId};
    use crate::net::NetConfig;

    /// Two writers race to set a register on node 0; the final value
    /// depends on delivery order, so exploration must see both.
    #[derive(Debug, Clone, Default)]
    struct Register {
        value: u64,
        write: Option<u64>,
    }

    impl Actor for Register {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if let Some(v) = self.write {
                ctx.send(NodeId(0), v);
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: u64, _ctx: &mut Ctx<'_, u64>) {
            self.value = msg;
        }
    }

    impl StateHash for Register {
        fn state_hash(&self, h: &mut StableHasher) {
            h.write_u64(self.value);
            h.write_bool(self.write.is_some());
        }
    }

    impl StateHash for u64 {
        fn state_hash(&self, h: &mut StableHasher) {
            h.write_u64(*self);
        }
    }

    fn racing_sim() -> Sim<Register> {
        // Nodes 1 and 2 both write to node 0 from the same site; the
        // two deliveries land within the jitter window.
        let mut net = NetConfig::single_site(3);
        net.jitter_frac = 0.0;
        Sim::new(
            net,
            1,
            vec![
                Register::default(),
                Register {
                    value: 0,
                    write: Some(11),
                },
                Register {
                    value: 0,
                    write: Some(22),
                },
            ],
        )
    }

    fn explore_cfg() -> ExploreConfig {
        ExploreConfig {
            horizon: SimTime::from_secs(1.0),
            max_depth: 4,
            max_branch: 4,
            commute_window: SimTime::from_millis(4.0),
            max_states: 10_000,
        }
    }

    #[test]
    fn explorer_sees_both_orders_of_a_race() {
        let mut explorer = Explorer::new(racing_sim(), explore_cfg());
        let report = explorer.run(|_sim| None, |sim| (None, sim.node(NodeId(0)).value));
        let mut finals = report.terminals.clone();
        finals.sort_unstable();
        assert_eq!(finals, vec![11, 22]);
        assert_eq!(report.stats.terminals, 2);
        assert_eq!(report.stats.choice_points, 1);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn commuting_events_do_not_branch() {
        // A single writer: simultaneous events never conflict, so the
        // search degenerates to one path with zero choice points.
        let mut net = NetConfig::single_site(3);
        net.jitter_frac = 0.0;
        let sim = Sim::new(
            net,
            1,
            vec![
                Register::default(),
                Register {
                    value: 0,
                    write: Some(5),
                },
                Register::default(),
            ],
        );
        let mut explorer = Explorer::new(sim, explore_cfg());
        let report = explorer.run(|_| None, |sim| (None, sim.node(NodeId(0)).value));
        assert_eq!(report.stats.choice_points, 0);
        assert_eq!(report.stats.terminals, 1);
        assert_eq!(report.terminals, vec![5]);
    }

    #[test]
    fn violations_carry_replayable_traces() {
        // "22 must never be the final value" — violated on exactly
        // the order that delivers 11 first.
        let mut explorer = Explorer::new(racing_sim(), explore_cfg());
        let report = explorer.run(
            |_| None,
            |sim| {
                let v = sim.node(NodeId(0)).value;
                let violation = (v == 22).then(|| ("no-22".to_string(), format!("value={v}")));
                (violation, v)
            },
        );
        assert_eq!(report.violations.len(), 1);
        let violation = &report.violations[0];
        assert_eq!(violation.property, "no-22");
        let replayed = explorer.replay(&violation.trace);
        assert_eq!(replayed.node(NodeId(0)).value, 22);
        assert_eq!(report.stats.terminals, 2);
    }

    #[test]
    fn exploration_is_deterministic() {
        let run = || {
            let mut explorer = Explorer::new(racing_sim(), explore_cfg());
            let report = explorer.run(|_| None, |sim| (None, sim.node(NodeId(0)).value));
            (report.stats, report.terminals)
        };
        assert_eq!(run(), run());
    }

    impl MsgClass for u64 {
        fn msg_class(&self) -> &'static str {
            "write"
        }
    }

    #[test]
    fn schedule_dist_is_deterministic_per_seed() {
        let dist = ScheduleDist::uniform(
            42,
            ClassFaults {
                discard: 0.3,
                delay: 0.3,
                delay_by: SimTime::from_millis(20.0),
                duplicate: 0.3,
            },
        );
        let run = |seed: u64| {
            let mut sim = racing_sim();
            sim.set_schedule_dist(dist.with_seed(seed));
            sim.run_until(SimTime::from_secs(1.0));
            (sim.stats(), sim.node(NodeId(0)).value)
        };
        assert_eq!(run(7), run(7));
        // Across many seeds the perturbations actually happen.
        let mut perturbed = 0u64;
        for seed in 0..64 {
            let (stats, _) = run(seed);
            perturbed +=
                stats.schedule_discards + stats.schedule_delays + stats.schedule_duplicates;
        }
        assert!(perturbed > 0, "schedule faults never triggered");
    }
}
