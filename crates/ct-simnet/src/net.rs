//! Wide-area network model: sites, latency, and partitions.

use crate::actor::{NodeId, SiteId};
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Static description of the network topology and latency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Site assignment per node, indexed by `NodeId.0`.
    pub site_of: Vec<SiteId>,
    /// Mean one-way latency between nodes in the same site, ms.
    pub intra_site_ms: f64,
    /// Mean one-way latency between nodes in different sites, ms.
    pub inter_site_ms: f64,
    /// Uniform jitter applied to each delivery, as a fraction of the
    /// mean latency (0.2 = ±20 %).
    pub jitter_frac: f64,
}

impl NetConfig {
    /// All `n` nodes in one site, with LAN-ish latencies.
    pub fn single_site(n: usize) -> Self {
        Self {
            site_of: vec![SiteId(0); n],
            intra_site_ms: 1.0,
            inter_site_ms: 10.0,
            jitter_frac: 0.2,
        }
    }

    /// Nodes spread across sites: `sites[k]` nodes in site `k`,
    /// numbered consecutively.
    pub fn multi_site(sites: &[usize]) -> Self {
        let mut site_of = Vec::new();
        for (k, &count) in sites.iter().enumerate() {
            site_of.extend(std::iter::repeat_n(SiteId(k), count));
        }
        Self {
            site_of,
            intra_site_ms: 1.0,
            inter_site_ms: 10.0,
            jitter_frac: 0.2,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.site_of.len()
    }

    /// Number of distinct sites.
    pub fn site_count(&self) -> usize {
        self.site_of
            .iter()
            .map(|s| s.0)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0)
    }

    /// Site of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn site(&self, node: NodeId) -> SiteId {
        self.site_of[node.0]
    }

    /// Ids of all nodes in `site`.
    pub fn nodes_in_site(&self, site: SiteId) -> Vec<NodeId> {
        self.site_of
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == site)
            .map(|(i, _)| NodeId(i))
            .collect()
    }
}

/// Dynamic network state: which sites are isolated, which nodes are
/// crashed, plus the latency sampler.
#[derive(Debug, Clone)]
pub(crate) struct NetState {
    pub config: NetConfig,
    pub isolated_sites: BTreeSet<SiteId>,
    pub crashed_nodes: BTreeSet<NodeId>,
}

impl NetState {
    pub fn new(config: NetConfig) -> Self {
        Self {
            config,
            isolated_sites: BTreeSet::new(),
            crashed_nodes: BTreeSet::new(),
        }
    }

    /// Whether a message from `from` to `to` can be delivered at all.
    pub fn deliverable(&self, from: NodeId, to: NodeId) -> bool {
        if self.crashed_nodes.contains(&from) || self.crashed_nodes.contains(&to) {
            return false;
        }
        let (sf, st) = (self.config.site(from), self.config.site(to));
        // A site isolation severs the site from *other* sites but
        // leaves its internal LAN intact.
        if sf != st && (self.isolated_sites.contains(&sf) || self.isolated_sites.contains(&st)) {
            return false;
        }
        true
    }

    /// Samples one-way delivery latency for a link.
    pub fn latency(&self, from: NodeId, to: NodeId, rng: &mut StdRng) -> SimTime {
        let mean = if self.config.site(from) == self.config.site(to) {
            self.config.intra_site_ms
        } else {
            self.config.inter_site_ms
        };
        let j = self.config.jitter_frac;
        let factor = if j > 0.0 {
            1.0 + rng.random_range(-j..j)
        } else {
            1.0
        };
        SimTime::from_millis((mean * factor).max(0.01))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn single_and_multi_site_layout() {
        let s = NetConfig::single_site(4);
        assert_eq!(s.node_count(), 4);
        assert_eq!(s.site_count(), 1);

        let m = NetConfig::multi_site(&[6, 6, 6]);
        assert_eq!(m.node_count(), 18);
        assert_eq!(m.site_count(), 3);
        assert_eq!(m.site(NodeId(0)), SiteId(0));
        assert_eq!(m.site(NodeId(7)), SiteId(1));
        assert_eq!(m.site(NodeId(17)), SiteId(2));
        assert_eq!(m.nodes_in_site(SiteId(1)).len(), 6);
    }

    #[test]
    fn crash_blocks_delivery() {
        let mut st = NetState::new(NetConfig::multi_site(&[2, 2]));
        assert!(st.deliverable(NodeId(0), NodeId(2)));
        st.crashed_nodes.insert(NodeId(2));
        assert!(!st.deliverable(NodeId(0), NodeId(2)));
        assert!(!st.deliverable(NodeId(2), NodeId(0)));
        assert!(st.deliverable(NodeId(0), NodeId(3)));
    }

    #[test]
    fn isolation_severs_wan_but_not_lan() {
        let mut st = NetState::new(NetConfig::multi_site(&[2, 2]));
        st.isolated_sites.insert(SiteId(0));
        // Cross-site: blocked both directions.
        assert!(!st.deliverable(NodeId(0), NodeId(2)));
        assert!(!st.deliverable(NodeId(3), NodeId(1)));
        // Within the isolated site: still fine.
        assert!(st.deliverable(NodeId(0), NodeId(1)));
        // Within the other site: fine.
        assert!(st.deliverable(NodeId(2), NodeId(3)));
    }

    #[test]
    fn latency_scales_with_site_distance() {
        let st = NetState::new(NetConfig::multi_site(&[2, 2]));
        let mut rng = StdRng::seed_from_u64(1);
        let lan = st.latency(NodeId(0), NodeId(1), &mut rng);
        let wan = st.latency(NodeId(0), NodeId(2), &mut rng);
        assert!(wan > lan, "wan {wan} lan {lan}");
        assert!(lan >= SimTime::from_millis(0.5));
    }

    #[test]
    fn zero_jitter_is_exact() {
        let mut cfg = NetConfig::single_site(2);
        cfg.jitter_frac = 0.0;
        let st = NetState::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            st.latency(NodeId(0), NodeId(1), &mut rng),
            SimTime::from_millis(1.0)
        );
    }
}
