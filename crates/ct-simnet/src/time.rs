//! Virtual time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A point in simulated time, stored as integer microseconds so event
/// ordering is exact and runs replay deterministically.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from (non-negative, finite) seconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `secs` is negative or non-finite.
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "bad duration {secs}");
        SimTime((secs * 1e6).round() as u64)
    }

    /// Creates a time from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// The value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The value in whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics on underflow (subtracting a later time from an earlier
    /// one); use [`SimTime::saturating_sub`] when that can happen.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs() - 1.5).abs() < 1e-9);
        assert_eq!(SimTime::from_millis(250.0), SimTime::from_secs(0.25));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(2.0);
        let b = SimTime::from_secs(0.5);
        assert_eq!(a + b, SimTime::from_secs(2.5));
        assert_eq!(a - b, SimTime::from_secs(1.5));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::ZERO,
            SimTime::from_millis(1.0),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(3.0));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs(1.25).to_string(), "1.250000s");
    }
}
