//! Scheduled fault injection.

use crate::actor::{NodeId, SiteId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A fault (or repair) applied to the simulation at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Crash a single node: it stops receiving messages and timers.
    CrashNode(NodeId),
    /// Crash every node in a site (the natural-disaster outcome for a
    /// flooded control site).
    CrashSite(SiteId),
    /// Sever a site's WAN links while leaving its LAN intact (the
    /// paper's *site isolation* attack).
    IsolateSite(SiteId),
    /// Undo a site isolation.
    HealSite(SiteId),
}

/// A time-ordered schedule of fault actions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    entries: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an action at `at`, keeping the plan sorted by time.
    ///
    /// Entries form a total order on `(time, insertion sequence)`:
    /// equal-time actions are applied in the order they were added to
    /// the plan. The insert goes through a binary search for the
    /// upper bound of `at` rather than a whole-vec re-sort, so the
    /// tie order is structural — not an artifact of sort stability —
    /// and explorer replays of a plan are schedule-stable.
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        let pos = self.entries.partition_point(|&(t, _)| t <= at);
        self.entries.insert(pos, (at, action));
        self
    }

    /// The scheduled actions in time order.
    pub fn entries(&self) -> &[(SimTime, FaultAction)] {
        &self.entries
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_stays_sorted() {
        let plan = FaultPlan::new()
            .at(SimTime::from_secs(5.0), FaultAction::CrashNode(NodeId(1)))
            .at(SimTime::from_secs(1.0), FaultAction::IsolateSite(SiteId(0)))
            .at(SimTime::from_secs(3.0), FaultAction::HealSite(SiteId(0)));
        let times: Vec<f64> = plan.entries().iter().map(|(t, _)| t.as_secs()).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn equal_time_entries_keep_insertion_order() {
        let t = SimTime::from_secs(2.0);
        let plan = FaultPlan::new()
            .at(t, FaultAction::IsolateSite(SiteId(0)))
            .at(SimTime::from_secs(1.0), FaultAction::CrashNode(NodeId(0)))
            .at(t, FaultAction::HealSite(SiteId(0)))
            .at(t, FaultAction::IsolateSite(SiteId(1)));
        assert_eq!(
            plan.entries(),
            &[
                (SimTime::from_secs(1.0), FaultAction::CrashNode(NodeId(0))),
                (t, FaultAction::IsolateSite(SiteId(0))),
                (t, FaultAction::HealSite(SiteId(0))),
                (t, FaultAction::IsolateSite(SiteId(1))),
            ]
        );
    }

    #[test]
    fn empty_plan() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.entries(), &[]);
    }
}
