//! Actors and their interface to the kernel.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (process) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a site (control center / data center) hosting nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub usize);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A deterministic state machine driven by messages and timers.
///
/// Actors never block: handlers inspect state, mutate it, and emit
/// sends/timers through the [`Ctx`].
pub trait Actor {
    /// The message type exchanged between actors of this simulation.
    type Msg: Clone;

    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Called when a message is delivered to this node.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _timer_id: u64, _ctx: &mut Ctx<'_, Self::Msg>) {}
}

/// Commands an actor can issue during a handler invocation.
#[derive(Debug, Clone)]
pub(crate) enum Command<M> {
    Send { to: NodeId, msg: M },
    Timer { delay: SimTime, id: u64 },
}

/// Handler context: the actor's window into the kernel.
///
/// Collects outgoing sends and timers; the kernel applies them (with
/// network latency, partitions, and crash filtering) after the handler
/// returns.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: NodeId,
    pub(crate) commands: &'a mut Vec<Command<M>>,
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to`. Delivery is subject to network latency and
    /// may be dropped by partitions or crashes; sending to self is
    /// delivered with loopback latency.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.commands.push(Command::Send { to, msg });
    }

    /// Broadcasts `msg` to every node in `targets` except self.
    pub fn broadcast(&mut self, targets: impl IntoIterator<Item = NodeId>, msg: M)
    where
        M: Clone,
    {
        let me = self.self_id;
        for t in targets {
            if t != me {
                self.commands.push(Command::Send {
                    to: t,
                    msg: msg.clone(),
                });
            }
        }
    }

    /// Schedules `on_timer(id)` on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, id: u64) {
        self.commands.push(Command::Timer { delay, id });
    }
}

/// A standalone command sink for unit-testing actors without running a
/// full simulation: build a [`Ctx`] against it, invoke handlers
/// directly, then inspect what the actor tried to do.
#[derive(Debug)]
pub struct CommandBuffer<M> {
    commands: Vec<Command<M>>,
}

impl<M> Default for CommandBuffer<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> CommandBuffer<M> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self {
            commands: Vec::new(),
        }
    }

    /// A handler context writing into this buffer.
    pub fn ctx(&mut self, now: SimTime, self_id: NodeId) -> Ctx<'_, M> {
        Ctx {
            now,
            self_id,
            commands: &mut self.commands,
        }
    }

    /// Messages the actor sent: `(to, msg)` in order.
    pub fn sent(&self) -> Vec<(NodeId, &M)> {
        self.commands
            .iter()
            .filter_map(|c| match c {
                Command::Send { to, msg } => Some((*to, msg)),
                Command::Timer { .. } => None,
            })
            .collect()
    }

    /// Timers the actor set: `(delay, id)` in order.
    pub fn timers(&self) -> Vec<(SimTime, u64)> {
        self.commands
            .iter()
            .filter_map(|c| match c {
                Command::Timer { delay, id } => Some((*delay, *id)),
                Command::Send { .. } => None,
            })
            .collect()
    }

    /// Discards buffered commands.
    pub fn clear(&mut self) {
        self.commands.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(SiteId(1).to_string(), "s1");
    }

    #[test]
    fn ctx_collects_commands() {
        let mut commands: Vec<Command<u32>> = Vec::new();
        let mut ctx = Ctx {
            now: SimTime::from_secs(1.0),
            self_id: NodeId(0),
            commands: &mut commands,
        };
        ctx.send(NodeId(1), 10);
        ctx.broadcast([NodeId(0), NodeId(1), NodeId(2)], 20);
        ctx.set_timer(SimTime::from_millis(5.0), 7);
        assert_eq!(ctx.now(), SimTime::from_secs(1.0));
        assert_eq!(ctx.self_id(), NodeId(0));
        // broadcast skips self: 1 send + 2 broadcast + 1 timer.
        assert_eq!(commands.len(), 4);
    }
}
