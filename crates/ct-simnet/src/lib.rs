//! Deterministic discrete-event simulation of distributed systems.
//!
//! This crate is the substrate under `ct-replication`: it provides a
//! virtual-time event kernel ([`Sim`]), a wide-area network model with
//! per-link latency and site-granular partitions ([`NetConfig`]), and
//! scheduled fault injection ([`FaultAction`]) — node crashes, site
//! isolation (the paper's network-level attack), and repair.
//!
//! Everything is deterministic: given the same actors, configuration
//! and seed, a simulation replays identically. That property is what
//! lets the compound-threat framework cross-validate its rule-based
//! operational-state classifier against actual protocol executions.
//!
//! Beyond single-schedule replay, the [`explore`] module turns the
//! kernel into a bounded model checker: [`Explorer`] enumerates every
//! ordering of near-simultaneous conflicting events up to a depth
//! bound (with state-hash deduplication), and [`ScheduleDist`] drives
//! seeded randomized campaigns of per-message-class discard / delay /
//! duplicate faults for the schedules past the exhaustive horizon.
//!
//! # Example
//!
//! ```
//! use ct_simnet::{Actor, Ctx, NetConfig, NodeId, Sim, SimTime};
//!
//! /// A node that pings its peer once and counts replies.
//! struct Ping { peer: NodeId, replies: u32 }
//! impl Actor for Ping {
//!     type Msg = &'static str;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
//!         ctx.send(self.peer, "ping");
//!     }
//!     fn on_message(&mut self, _from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
//!         match msg {
//!             "ping" => { let from = ctx.self_id(); ctx.send(self.peer, "pong"); let _ = from; }
//!             _ => self.replies += 1,
//!         }
//!     }
//! }
//!
//! let net = NetConfig::single_site(2);
//! let mut sim = Sim::new(net, 7, vec![
//!     Ping { peer: NodeId(1), replies: 0 },
//!     Ping { peer: NodeId(0), replies: 0 },
//! ]);
//! sim.run_until(SimTime::from_secs(1.0));
//! assert_eq!(sim.node(NodeId(0)).replies, 1);
//! ```

pub mod actor;
pub mod explore;
pub mod fault;
pub mod net;
pub mod sim;
pub mod time;

pub use actor::{Actor, CommandBuffer, Ctx, NodeId, SiteId};
pub use explore::{
    ClassFaults, ExploreConfig, ExploreReport, ExploreStats, ExploreViolation, Explorer, MsgClass,
    ScheduleDist, StateHash,
};
pub use fault::{FaultAction, FaultPlan};
pub use net::NetConfig;
pub use sim::{Sim, SimStats};
pub use time::SimTime;
