//! Property-based and stress tests for the discrete-event kernel.

use ct_simnet::{Actor, Ctx, FaultAction, FaultPlan, NetConfig, NodeId, Sim, SimTime, SiteId};
use proptest::prelude::*;

/// A flood actor: every node forwards each received token to every
/// other node until a hop budget runs out.
#[derive(Debug, Clone)]
struct Flood {
    peers: Vec<NodeId>,
    received: Vec<(NodeId, u32)>,
    start: bool,
}

impl Actor for Flood {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        if self.start {
            ctx.broadcast(self.peers.iter().copied(), 3);
        }
    }

    fn on_message(&mut self, from: NodeId, hops: u32, ctx: &mut Ctx<'_, u32>) {
        self.received.push((from, hops));
        if hops > 0 {
            ctx.broadcast(self.peers.iter().copied(), hops - 1);
        }
    }
}

fn flood_net(sites: &[usize]) -> (NetConfig, Vec<Flood>) {
    let net = NetConfig::multi_site(sites);
    let n = net.node_count();
    let peers: Vec<NodeId> = (0..n).map(NodeId).collect();
    let actors = (0..n)
        .map(|i| Flood {
            peers: peers.clone(),
            received: Vec::new(),
            start: i == 0,
        })
        .collect();
    (net, actors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical (topology, seed) pairs replay identically, including
    /// message orders; different seeds change jittered timings but
    /// never the delivered-message multiset.
    #[test]
    fn deterministic_replay_and_seed_invariance(
        site_a in 1usize..4,
        site_b in 1usize..4,
        seed in any::<u64>(),
    ) {
        let run = |seed: u64| {
            let (net, actors) = flood_net(&[site_a, site_b]);
            let mut sim = Sim::new(net, seed, actors);
            sim.run_until(SimTime::from_secs(30.0));
            let logs: Vec<Vec<(NodeId, u32)>> =
                sim.nodes().iter().map(|n| n.received.clone()).collect();
            (sim.stats(), logs)
        };
        let (s1, l1) = run(seed);
        let (s2, l2) = run(seed);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(l1, l2);
        // A different seed must deliver the same total count (no
        // drops in a fault-free run).
        let (s3, _) = run(seed.wrapping_add(1));
        prop_assert_eq!(s1.delivered, s3.delivered);
        prop_assert_eq!(s1.dropped, 0);
    }

    /// Crashing a node never increases the delivered count, and all
    /// messages to/from it are dropped, not delivered.
    #[test]
    fn crash_only_removes_messages(site_a in 2usize..4, victim in 1usize..4) {
        let (net, actors) = flood_net(&[site_a, 2]);
        let n = net.node_count();
        let victim = NodeId(victim % n);
        let baseline = {
            let (net, actors) = flood_net(&[site_a, 2]);
            let mut sim = Sim::new(net, 5, actors);
            sim.run_until(SimTime::from_secs(30.0));
            sim.stats().delivered
        };
        let mut sim = Sim::new(net, 5, actors);
        sim.crash_node(victim);
        sim.run_until(SimTime::from_secs(30.0));
        prop_assert!(sim.stats().delivered <= baseline);
        prop_assert!(sim.node(victim).received.is_empty());
    }
}

#[test]
fn isolation_exactly_partitions_delivery() {
    // With site 0 isolated from the start, messages flow only within
    // sites; the flood from node 0 never reaches site 1.
    let (net, actors) = flood_net(&[3, 3]);
    let mut sim = Sim::new(net, 11, actors);
    sim.isolate_site(SiteId(0));
    sim.run_until(SimTime::from_secs(30.0));
    for i in 3..6 {
        assert!(
            sim.node(NodeId(i)).received.is_empty(),
            "cross-partition delivery to n{i}"
        );
    }
    // Within site 0 the flood still propagates.
    assert!(!sim.node(NodeId(1)).received.is_empty());
}

#[test]
fn fault_plan_order_does_not_depend_on_insertion_order() {
    let a = FaultPlan::new()
        .at(SimTime::from_secs(2.0), FaultAction::IsolateSite(SiteId(0)))
        .at(SimTime::from_secs(1.0), FaultAction::CrashNode(NodeId(1)));
    let b = FaultPlan::new()
        .at(SimTime::from_secs(1.0), FaultAction::CrashNode(NodeId(1)))
        .at(SimTime::from_secs(2.0), FaultAction::IsolateSite(SiteId(0)));
    assert_eq!(a.entries(), b.entries());
}

#[test]
fn large_flood_stress() {
    // 24 nodes, hop budget 3: tens of thousands of events; the kernel
    // must stay fast and exact. 23 first-hop messages, each spawning
    // 23 more for 3 hops: 23 + 23*23*3-ish deliveries — count them
    // precisely via the hop-budget recurrence instead.
    let (net, actors) = flood_net(&[8, 8, 8]);
    let mut sim = Sim::new(net, 3, actors);
    let stats = sim.run_until(SimTime::from_secs(120.0));
    // delivered(h) counts: messages with hops h spawn broadcasts of
    // h-1. Total = 23 * (1 + 23 + 23^2 + 23^3).
    let expected: u64 = 23 * (1 + 23 + 23u64.pow(2) + 23u64.pow(3));
    assert_eq!(stats.delivered, expected);
    assert_eq!(stats.dropped, 0);
}
