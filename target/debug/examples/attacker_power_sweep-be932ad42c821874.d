/root/repo/target/debug/examples/attacker_power_sweep-be932ad42c821874.d: examples/attacker_power_sweep.rs

/root/repo/target/debug/examples/libattacker_power_sweep-be932ad42c821874.rmeta: examples/attacker_power_sweep.rs

examples/attacker_power_sweep.rs:
