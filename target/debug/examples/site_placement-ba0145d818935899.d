/root/repo/target/debug/examples/site_placement-ba0145d818935899.d: examples/site_placement.rs

/root/repo/target/debug/examples/libsite_placement-ba0145d818935899.rmeta: examples/site_placement.rs

examples/site_placement.rs:
