/root/repo/target/debug/examples/quickstart-0bc311e63afe1ef9.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0bc311e63afe1ef9.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
