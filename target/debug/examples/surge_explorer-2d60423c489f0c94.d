/root/repo/target/debug/examples/surge_explorer-2d60423c489f0c94.d: examples/surge_explorer.rs

/root/repo/target/debug/examples/libsurge_explorer-2d60423c489f0c94.rmeta: examples/surge_explorer.rs

examples/surge_explorer.rs:
