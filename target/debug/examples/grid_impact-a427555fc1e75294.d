/root/repo/target/debug/examples/grid_impact-a427555fc1e75294.d: examples/grid_impact.rs

/root/repo/target/debug/examples/libgrid_impact-a427555fc1e75294.rmeta: examples/grid_impact.rs

examples/grid_impact.rs:
