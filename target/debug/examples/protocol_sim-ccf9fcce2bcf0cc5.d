/root/repo/target/debug/examples/protocol_sim-ccf9fcce2bcf0cc5.d: examples/protocol_sim.rs Cargo.toml

/root/repo/target/debug/examples/libprotocol_sim-ccf9fcce2bcf0cc5.rmeta: examples/protocol_sim.rs Cargo.toml

examples/protocol_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
