/root/repo/target/debug/examples/attacker_power_sweep-49200b35858e2a62.d: examples/attacker_power_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libattacker_power_sweep-49200b35858e2a62.rmeta: examples/attacker_power_sweep.rs Cargo.toml

examples/attacker_power_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
