/root/repo/target/debug/examples/quickstart-d1f945277d52d0b7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d1f945277d52d0b7: examples/quickstart.rs

examples/quickstart.rs:
