/root/repo/target/debug/examples/downtime_planning-48c14cc383516743.d: examples/downtime_planning.rs

/root/repo/target/debug/examples/libdowntime_planning-48c14cc383516743.rmeta: examples/downtime_planning.rs

examples/downtime_planning.rs:
