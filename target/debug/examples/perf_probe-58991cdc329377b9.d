/root/repo/target/debug/examples/perf_probe-58991cdc329377b9.d: crates/bench/examples/perf_probe.rs

/root/repo/target/debug/examples/perf_probe-58991cdc329377b9: crates/bench/examples/perf_probe.rs

crates/bench/examples/perf_probe.rs:
