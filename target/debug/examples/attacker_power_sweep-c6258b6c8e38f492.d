/root/repo/target/debug/examples/attacker_power_sweep-c6258b6c8e38f492.d: examples/attacker_power_sweep.rs

/root/repo/target/debug/examples/attacker_power_sweep-c6258b6c8e38f492: examples/attacker_power_sweep.rs

examples/attacker_power_sweep.rs:
