/root/repo/target/debug/examples/oahu_case_study-6882adbc3c95d3b1.d: examples/oahu_case_study.rs

/root/repo/target/debug/examples/liboahu_case_study-6882adbc3c95d3b1.rmeta: examples/oahu_case_study.rs

examples/oahu_case_study.rs:
