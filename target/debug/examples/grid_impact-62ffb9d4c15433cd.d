/root/repo/target/debug/examples/grid_impact-62ffb9d4c15433cd.d: examples/grid_impact.rs Cargo.toml

/root/repo/target/debug/examples/libgrid_impact-62ffb9d4c15433cd.rmeta: examples/grid_impact.rs Cargo.toml

examples/grid_impact.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
