/root/repo/target/debug/examples/oahu_case_study-25c705f23300a30f.d: examples/oahu_case_study.rs Cargo.toml

/root/repo/target/debug/examples/liboahu_case_study-25c705f23300a30f.rmeta: examples/oahu_case_study.rs Cargo.toml

examples/oahu_case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
