/root/repo/target/debug/examples/downtime_planning-e843193fe912596c.d: examples/downtime_planning.rs Cargo.toml

/root/repo/target/debug/examples/libdowntime_planning-e843193fe912596c.rmeta: examples/downtime_planning.rs Cargo.toml

examples/downtime_planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
