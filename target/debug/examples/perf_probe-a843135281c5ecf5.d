/root/repo/target/debug/examples/perf_probe-a843135281c5ecf5.d: crates/bench/examples/perf_probe.rs Cargo.toml

/root/repo/target/debug/examples/libperf_probe-a843135281c5ecf5.rmeta: crates/bench/examples/perf_probe.rs Cargo.toml

crates/bench/examples/perf_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
