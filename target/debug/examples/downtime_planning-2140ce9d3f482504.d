/root/repo/target/debug/examples/downtime_planning-2140ce9d3f482504.d: examples/downtime_planning.rs

/root/repo/target/debug/examples/downtime_planning-2140ce9d3f482504: examples/downtime_planning.rs

examples/downtime_planning.rs:
