/root/repo/target/debug/examples/grid_impact-6c65f89b7dd42274.d: examples/grid_impact.rs

/root/repo/target/debug/examples/grid_impact-6c65f89b7dd42274: examples/grid_impact.rs

examples/grid_impact.rs:
