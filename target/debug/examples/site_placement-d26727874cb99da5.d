/root/repo/target/debug/examples/site_placement-d26727874cb99da5.d: examples/site_placement.rs

/root/repo/target/debug/examples/site_placement-d26727874cb99da5: examples/site_placement.rs

examples/site_placement.rs:
