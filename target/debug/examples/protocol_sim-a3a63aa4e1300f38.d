/root/repo/target/debug/examples/protocol_sim-a3a63aa4e1300f38.d: examples/protocol_sim.rs

/root/repo/target/debug/examples/libprotocol_sim-a3a63aa4e1300f38.rmeta: examples/protocol_sim.rs

examples/protocol_sim.rs:
