/root/repo/target/debug/examples/site_placement-554f1f37561ccbd6.d: examples/site_placement.rs Cargo.toml

/root/repo/target/debug/examples/libsite_placement-554f1f37561ccbd6.rmeta: examples/site_placement.rs Cargo.toml

examples/site_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
