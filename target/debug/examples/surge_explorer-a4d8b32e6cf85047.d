/root/repo/target/debug/examples/surge_explorer-a4d8b32e6cf85047.d: examples/surge_explorer.rs

/root/repo/target/debug/examples/surge_explorer-a4d8b32e6cf85047: examples/surge_explorer.rs

examples/surge_explorer.rs:
