/root/repo/target/debug/examples/surge_explorer-bb57ebb303533bb3.d: examples/surge_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libsurge_explorer-bb57ebb303533bb3.rmeta: examples/surge_explorer.rs Cargo.toml

examples/surge_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
