/root/repo/target/debug/examples/protocol_sim-93d0d6d12312f5af.d: examples/protocol_sim.rs

/root/repo/target/debug/examples/protocol_sim-93d0d6d12312f5af: examples/protocol_sim.rs

examples/protocol_sim.rs:
