/root/repo/target/debug/examples/oahu_case_study-68973c4a04bd74dd.d: examples/oahu_case_study.rs

/root/repo/target/debug/examples/oahu_case_study-68973c4a04bd74dd: examples/oahu_case_study.rs

examples/oahu_case_study.rs:
