/root/repo/target/debug/examples/quickstart-546117fa4279bdaf.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-546117fa4279bdaf.rmeta: examples/quickstart.rs

examples/quickstart.rs:
