/root/repo/target/debug/deps/table1_crossval-0ccbb566c0f44533.d: tests/table1_crossval.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_crossval-0ccbb566c0f44533.rmeta: tests/table1_crossval.rs Cargo.toml

tests/table1_crossval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
