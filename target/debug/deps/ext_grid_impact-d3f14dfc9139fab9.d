/root/repo/target/debug/deps/ext_grid_impact-d3f14dfc9139fab9.d: crates/bench/benches/ext_grid_impact.rs

/root/repo/target/debug/deps/libext_grid_impact-d3f14dfc9139fab9.rmeta: crates/bench/benches/ext_grid_impact.rs

crates/bench/benches/ext_grid_impact.rs:
