/root/repo/target/debug/deps/compound_threats_suite-ede9cfa717e01291.d: src/lib.rs

/root/repo/target/debug/deps/libcompound_threats_suite-ede9cfa717e01291.rmeta: src/lib.rs

src/lib.rs:
