/root/repo/target/debug/deps/ct_threat-91504f869f3b6ee7.d: crates/ct-threat/src/lib.rs crates/ct-threat/src/apply.rs crates/ct-threat/src/attacker.rs crates/ct-threat/src/classify.rs crates/ct-threat/src/scenario.rs crates/ct-threat/src/state.rs

/root/repo/target/debug/deps/ct_threat-91504f869f3b6ee7: crates/ct-threat/src/lib.rs crates/ct-threat/src/apply.rs crates/ct-threat/src/attacker.rs crates/ct-threat/src/classify.rs crates/ct-threat/src/scenario.rs crates/ct-threat/src/state.rs

crates/ct-threat/src/lib.rs:
crates/ct-threat/src/apply.rs:
crates/ct-threat/src/attacker.rs:
crates/ct-threat/src/classify.rs:
crates/ct-threat/src/scenario.rs:
crates/ct-threat/src/state.rs:
