/root/repo/target/debug/deps/surge_crossval-25909425f45b48e5.d: tests/surge_crossval.rs Cargo.toml

/root/repo/target/debug/deps/libsurge_crossval-25909425f45b48e5.rmeta: tests/surge_crossval.rs Cargo.toml

tests/surge_crossval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
