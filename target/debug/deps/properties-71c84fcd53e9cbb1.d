/root/repo/target/debug/deps/properties-71c84fcd53e9cbb1.d: crates/ct-grid/tests/properties.rs

/root/repo/target/debug/deps/properties-71c84fcd53e9cbb1: crates/ct-grid/tests/properties.rs

crates/ct-grid/tests/properties.rs:
