/root/repo/target/debug/deps/properties-32aff8bbc8f83a9b.d: crates/ct-hydro/tests/properties.rs

/root/repo/target/debug/deps/libproperties-32aff8bbc8f83a9b.rmeta: crates/ct-hydro/tests/properties.rs

crates/ct-hydro/tests/properties.rs:
