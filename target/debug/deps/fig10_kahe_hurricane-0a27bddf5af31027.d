/root/repo/target/debug/deps/fig10_kahe_hurricane-0a27bddf5af31027.d: crates/bench/benches/fig10_kahe_hurricane.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_kahe_hurricane-0a27bddf5af31027.rmeta: crates/bench/benches/fig10_kahe_hurricane.rs Cargo.toml

crates/bench/benches/fig10_kahe_hurricane.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
