/root/repo/target/debug/deps/ct_geo-13f75c5a4405464d.d: crates/ct-geo/src/lib.rs crates/ct-geo/src/coords.rs crates/ct-geo/src/dem.rs crates/ct-geo/src/error.rs crates/ct-geo/src/grid.rs crates/ct-geo/src/noise.rs crates/ct-geo/src/polygon.rs crates/ct-geo/src/terrain.rs

/root/repo/target/debug/deps/libct_geo-13f75c5a4405464d.rmeta: crates/ct-geo/src/lib.rs crates/ct-geo/src/coords.rs crates/ct-geo/src/dem.rs crates/ct-geo/src/error.rs crates/ct-geo/src/grid.rs crates/ct-geo/src/noise.rs crates/ct-geo/src/polygon.rs crates/ct-geo/src/terrain.rs

crates/ct-geo/src/lib.rs:
crates/ct-geo/src/coords.rs:
crates/ct-geo/src/dem.rs:
crates/ct-geo/src/error.rs:
crates/ct-geo/src/grid.rs:
crates/ct-geo/src/noise.rs:
crates/ct-geo/src/polygon.rs:
crates/ct-geo/src/terrain.rs:
