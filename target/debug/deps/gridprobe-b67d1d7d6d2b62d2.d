/root/repo/target/debug/deps/gridprobe-b67d1d7d6d2b62d2.d: src/bin/gridprobe.rs

/root/repo/target/debug/deps/gridprobe-b67d1d7d6d2b62d2: src/bin/gridprobe.rs

src/bin/gridprobe.rs:
