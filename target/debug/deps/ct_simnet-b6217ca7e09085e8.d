/root/repo/target/debug/deps/ct_simnet-b6217ca7e09085e8.d: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libct_simnet-b6217ca7e09085e8.rmeta: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs Cargo.toml

crates/ct-simnet/src/lib.rs:
crates/ct-simnet/src/actor.rs:
crates/ct-simnet/src/fault.rs:
crates/ct-simnet/src/net.rs:
crates/ct-simnet/src/sim.rs:
crates/ct-simnet/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
