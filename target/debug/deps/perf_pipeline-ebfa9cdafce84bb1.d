/root/repo/target/debug/deps/perf_pipeline-ebfa9cdafce84bb1.d: crates/bench/benches/perf_pipeline.rs

/root/repo/target/debug/deps/libperf_pipeline-ebfa9cdafce84bb1.rmeta: crates/bench/benches/perf_pipeline.rs

crates/bench/benches/perf_pipeline.rs:
