/root/repo/target/debug/deps/compound_threats_suite-1e4e99187a6ad8ff.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcompound_threats_suite-1e4e99187a6ad8ff.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
