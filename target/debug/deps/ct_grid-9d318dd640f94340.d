/root/repo/target/debug/deps/ct_grid-9d318dd640f94340.d: crates/ct-grid/src/lib.rs crates/ct-grid/src/cascade.rs crates/ct-grid/src/fragility.rs crates/ct-grid/src/linalg.rs crates/ct-grid/src/network.rs crates/ct-grid/src/oahu.rs crates/ct-grid/src/powerflow.rs

/root/repo/target/debug/deps/libct_grid-9d318dd640f94340.rmeta: crates/ct-grid/src/lib.rs crates/ct-grid/src/cascade.rs crates/ct-grid/src/fragility.rs crates/ct-grid/src/linalg.rs crates/ct-grid/src/network.rs crates/ct-grid/src/oahu.rs crates/ct-grid/src/powerflow.rs

crates/ct-grid/src/lib.rs:
crates/ct-grid/src/cascade.rs:
crates/ct-grid/src/fragility.rs:
crates/ct-grid/src/linalg.rs:
crates/ct-grid/src/network.rs:
crates/ct-grid/src/oahu.rs:
crates/ct-grid/src/powerflow.rs:
