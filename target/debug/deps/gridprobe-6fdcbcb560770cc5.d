/root/repo/target/debug/deps/gridprobe-6fdcbcb560770cc5.d: src/bin/gridprobe.rs

/root/repo/target/debug/deps/gridprobe-6fdcbcb560770cc5: src/bin/gridprobe.rs

src/bin/gridprobe.rs:
