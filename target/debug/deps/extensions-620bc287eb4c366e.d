/root/repo/target/debug/deps/extensions-620bc287eb4c366e.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-620bc287eb4c366e.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
