/root/repo/target/debug/deps/properties-1a62112b55fc0dab.d: crates/ct-simnet/tests/properties.rs

/root/repo/target/debug/deps/libproperties-1a62112b55fc0dab.rmeta: crates/ct-simnet/tests/properties.rs

crates/ct-simnet/tests/properties.rs:
