/root/repo/target/debug/deps/ct_replication-af6bc8d612fa0e49.d: crates/ct-replication/src/lib.rs crates/ct-replication/src/client.rs crates/ct-replication/src/deployment.rs crates/ct-replication/src/master.rs crates/ct-replication/src/msg.rs crates/ct-replication/src/replica.rs crates/ct-replication/src/role.rs crates/ct-replication/src/verdict.rs

/root/repo/target/debug/deps/libct_replication-af6bc8d612fa0e49.rmeta: crates/ct-replication/src/lib.rs crates/ct-replication/src/client.rs crates/ct-replication/src/deployment.rs crates/ct-replication/src/master.rs crates/ct-replication/src/msg.rs crates/ct-replication/src/replica.rs crates/ct-replication/src/role.rs crates/ct-replication/src/verdict.rs

crates/ct-replication/src/lib.rs:
crates/ct-replication/src/client.rs:
crates/ct-replication/src/deployment.rs:
crates/ct-replication/src/master.rs:
crates/ct-replication/src/msg.rs:
crates/ct-replication/src/replica.rs:
crates/ct-replication/src/role.rs:
crates/ct-replication/src/verdict.rs:
