/root/repo/target/debug/deps/ct_grid-5678e93c7d717b48.d: crates/ct-grid/src/lib.rs crates/ct-grid/src/cascade.rs crates/ct-grid/src/fragility.rs crates/ct-grid/src/linalg.rs crates/ct-grid/src/network.rs crates/ct-grid/src/oahu.rs crates/ct-grid/src/powerflow.rs Cargo.toml

/root/repo/target/debug/deps/libct_grid-5678e93c7d717b48.rmeta: crates/ct-grid/src/lib.rs crates/ct-grid/src/cascade.rs crates/ct-grid/src/fragility.rs crates/ct-grid/src/linalg.rs crates/ct-grid/src/network.rs crates/ct-grid/src/oahu.rs crates/ct-grid/src/powerflow.rs Cargo.toml

crates/ct-grid/src/lib.rs:
crates/ct-grid/src/cascade.rs:
crates/ct-grid/src/fragility.rs:
crates/ct-grid/src/linalg.rs:
crates/ct-grid/src/network.rs:
crates/ct-grid/src/oahu.rs:
crates/ct-grid/src/powerflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
