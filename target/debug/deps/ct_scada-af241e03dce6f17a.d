/root/repo/target/debug/deps/ct_scada-af241e03dce6f17a.d: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs

/root/repo/target/debug/deps/ct_scada-af241e03dce6f17a: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs

crates/ct-scada/src/lib.rs:
crates/ct-scada/src/architecture.rs:
crates/ct-scada/src/asset.rs:
crates/ct-scada/src/error.rs:
crates/ct-scada/src/export.rs:
crates/ct-scada/src/oahu.rs:
crates/ct-scada/src/topology.rs:
