/root/repo/target/debug/deps/ct_bench-a70d467b20bc3a78.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ct_bench-a70d467b20bc3a78: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
