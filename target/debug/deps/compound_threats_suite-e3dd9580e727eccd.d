/root/repo/target/debug/deps/compound_threats_suite-e3dd9580e727eccd.d: src/lib.rs

/root/repo/target/debug/deps/libcompound_threats_suite-e3dd9580e727eccd.rmeta: src/lib.rs

src/lib.rs:
