/root/repo/target/debug/deps/ablation_attacker-d9900a2b8872910d.d: crates/bench/benches/ablation_attacker.rs

/root/repo/target/debug/deps/libablation_attacker-d9900a2b8872910d.rmeta: crates/bench/benches/ablation_attacker.rs

crates/bench/benches/ablation_attacker.rs:
