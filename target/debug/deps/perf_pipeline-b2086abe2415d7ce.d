/root/repo/target/debug/deps/perf_pipeline-b2086abe2415d7ce.d: crates/bench/benches/perf_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libperf_pipeline-b2086abe2415d7ce.rmeta: crates/bench/benches/perf_pipeline.rs Cargo.toml

crates/bench/benches/perf_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
