/root/repo/target/debug/deps/ct_grid-d2d3b333e2c49985.d: crates/ct-grid/src/lib.rs crates/ct-grid/src/cascade.rs crates/ct-grid/src/fragility.rs crates/ct-grid/src/linalg.rs crates/ct-grid/src/network.rs crates/ct-grid/src/oahu.rs crates/ct-grid/src/powerflow.rs

/root/repo/target/debug/deps/libct_grid-d2d3b333e2c49985.rlib: crates/ct-grid/src/lib.rs crates/ct-grid/src/cascade.rs crates/ct-grid/src/fragility.rs crates/ct-grid/src/linalg.rs crates/ct-grid/src/network.rs crates/ct-grid/src/oahu.rs crates/ct-grid/src/powerflow.rs

/root/repo/target/debug/deps/libct_grid-d2d3b333e2c49985.rmeta: crates/ct-grid/src/lib.rs crates/ct-grid/src/cascade.rs crates/ct-grid/src/fragility.rs crates/ct-grid/src/linalg.rs crates/ct-grid/src/network.rs crates/ct-grid/src/oahu.rs crates/ct-grid/src/powerflow.rs

crates/ct-grid/src/lib.rs:
crates/ct-grid/src/cascade.rs:
crates/ct-grid/src/fragility.rs:
crates/ct-grid/src/linalg.rs:
crates/ct-grid/src/network.rs:
crates/ct-grid/src/oahu.rs:
crates/ct-grid/src/powerflow.rs:
