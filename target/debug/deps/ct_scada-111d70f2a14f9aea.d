/root/repo/target/debug/deps/ct_scada-111d70f2a14f9aea.d: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs

/root/repo/target/debug/deps/libct_scada-111d70f2a14f9aea.rlib: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs

/root/repo/target/debug/deps/libct_scada-111d70f2a14f9aea.rmeta: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs

crates/ct-scada/src/lib.rs:
crates/ct-scada/src/architecture.rs:
crates/ct-scada/src/asset.rs:
crates/ct-scada/src/error.rs:
crates/ct-scada/src/export.rs:
crates/ct-scada/src/oahu.rs:
crates/ct-scada/src/topology.rs:
