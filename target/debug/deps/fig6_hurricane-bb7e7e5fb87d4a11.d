/root/repo/target/debug/deps/fig6_hurricane-bb7e7e5fb87d4a11.d: crates/bench/benches/fig6_hurricane.rs

/root/repo/target/debug/deps/libfig6_hurricane-bb7e7e5fb87d4a11.rmeta: crates/bench/benches/fig6_hurricane.rs

crates/bench/benches/fig6_hurricane.rs:
