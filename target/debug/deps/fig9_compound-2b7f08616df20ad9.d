/root/repo/target/debug/deps/fig9_compound-2b7f08616df20ad9.d: crates/bench/benches/fig9_compound.rs

/root/repo/target/debug/deps/libfig9_compound-2b7f08616df20ad9.rmeta: crates/bench/benches/fig9_compound.rs

crates/bench/benches/fig9_compound.rs:
