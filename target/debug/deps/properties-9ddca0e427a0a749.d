/root/repo/target/debug/deps/properties-9ddca0e427a0a749.d: crates/ct-hydro/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-9ddca0e427a0a749.rmeta: crates/ct-hydro/tests/properties.rs Cargo.toml

crates/ct-hydro/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
