/root/repo/target/debug/deps/properties-7d98fb7dd05d6934.d: crates/ct-geo/tests/properties.rs

/root/repo/target/debug/deps/properties-7d98fb7dd05d6934: crates/ct-geo/tests/properties.rs

crates/ct-geo/tests/properties.rs:
