/root/repo/target/debug/deps/hazard_invariants-8f970004cd68ae3b.d: tests/hazard_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libhazard_invariants-8f970004cd68ae3b.rmeta: tests/hazard_invariants.rs Cargo.toml

tests/hazard_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
