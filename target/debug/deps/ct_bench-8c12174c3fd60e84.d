/root/repo/target/debug/deps/ct_bench-8c12174c3fd60e84.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libct_bench-8c12174c3fd60e84.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
