/root/repo/target/debug/deps/ct_scada-e16ffe9e81da6275.d: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libct_scada-e16ffe9e81da6275.rmeta: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs Cargo.toml

crates/ct-scada/src/lib.rs:
crates/ct-scada/src/architecture.rs:
crates/ct-scada/src/asset.rs:
crates/ct-scada/src/error.rs:
crates/ct-scada/src/export.rs:
crates/ct-scada/src/oahu.rs:
crates/ct-scada/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
