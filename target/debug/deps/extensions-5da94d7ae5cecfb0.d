/root/repo/target/debug/deps/extensions-5da94d7ae5cecfb0.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-5da94d7ae5cecfb0: tests/extensions.rs

tests/extensions.rs:
