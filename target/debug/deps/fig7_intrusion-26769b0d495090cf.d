/root/repo/target/debug/deps/fig7_intrusion-26769b0d495090cf.d: crates/bench/benches/fig7_intrusion.rs

/root/repo/target/debug/deps/libfig7_intrusion-26769b0d495090cf.rmeta: crates/bench/benches/fig7_intrusion.rs

crates/bench/benches/fig7_intrusion.rs:
