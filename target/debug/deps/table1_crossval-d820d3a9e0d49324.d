/root/repo/target/debug/deps/table1_crossval-d820d3a9e0d49324.d: tests/table1_crossval.rs

/root/repo/target/debug/deps/libtable1_crossval-d820d3a9e0d49324.rmeta: tests/table1_crossval.rs

tests/table1_crossval.rs:
