/root/repo/target/debug/deps/ct-27352bb19093f180.d: src/bin/ct.rs

/root/repo/target/debug/deps/libct-27352bb19093f180.rmeta: src/bin/ct.rs

src/bin/ct.rs:
