/root/repo/target/debug/deps/ablation_attacker-29f0a26a287173cf.d: crates/bench/benches/ablation_attacker.rs Cargo.toml

/root/repo/target/debug/deps/libablation_attacker-29f0a26a287173cf.rmeta: crates/bench/benches/ablation_attacker.rs Cargo.toml

crates/bench/benches/ablation_attacker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
