/root/repo/target/debug/deps/rand-618f1e5ac1a2be44.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-618f1e5ac1a2be44.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
