/root/repo/target/debug/deps/properties-cfa3c0d885258ac4.d: crates/ct-simnet/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-cfa3c0d885258ac4.rmeta: crates/ct-simnet/tests/properties.rs Cargo.toml

crates/ct-simnet/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
