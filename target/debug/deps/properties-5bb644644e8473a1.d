/root/repo/target/debug/deps/properties-5bb644644e8473a1.d: crates/ct-hydro/tests/properties.rs

/root/repo/target/debug/deps/properties-5bb644644e8473a1: crates/ct-hydro/tests/properties.rs

crates/ct-hydro/tests/properties.rs:
