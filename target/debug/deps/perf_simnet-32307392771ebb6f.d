/root/repo/target/debug/deps/perf_simnet-32307392771ebb6f.d: crates/bench/benches/perf_simnet.rs

/root/repo/target/debug/deps/libperf_simnet-32307392771ebb6f.rmeta: crates/bench/benches/perf_simnet.rs

crates/bench/benches/perf_simnet.rs:
