/root/repo/target/debug/deps/attacker_equivalence-6031464eae311cae.d: tests/attacker_equivalence.rs

/root/repo/target/debug/deps/libattacker_equivalence-6031464eae311cae.rmeta: tests/attacker_equivalence.rs

tests/attacker_equivalence.rs:
