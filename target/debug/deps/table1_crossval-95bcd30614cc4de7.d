/root/repo/target/debug/deps/table1_crossval-95bcd30614cc4de7.d: tests/table1_crossval.rs

/root/repo/target/debug/deps/table1_crossval-95bcd30614cc4de7: tests/table1_crossval.rs

tests/table1_crossval.rs:
