/root/repo/target/debug/deps/ct-b9a0b88421ea12f6.d: src/bin/ct.rs

/root/repo/target/debug/deps/ct-b9a0b88421ea12f6: src/bin/ct.rs

src/bin/ct.rs:
