/root/repo/target/debug/deps/figures-fd23007b08a978a0.d: tests/figures.rs

/root/repo/target/debug/deps/libfigures-fd23007b08a978a0.rmeta: tests/figures.rs

tests/figures.rs:
