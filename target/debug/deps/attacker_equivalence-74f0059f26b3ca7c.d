/root/repo/target/debug/deps/attacker_equivalence-74f0059f26b3ca7c.d: tests/attacker_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libattacker_equivalence-74f0059f26b3ca7c.rmeta: tests/attacker_equivalence.rs Cargo.toml

tests/attacker_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
