/root/repo/target/debug/deps/ct_geo-1ee645c8205d44f6.d: crates/ct-geo/src/lib.rs crates/ct-geo/src/coords.rs crates/ct-geo/src/dem.rs crates/ct-geo/src/error.rs crates/ct-geo/src/grid.rs crates/ct-geo/src/noise.rs crates/ct-geo/src/polygon.rs crates/ct-geo/src/terrain.rs Cargo.toml

/root/repo/target/debug/deps/libct_geo-1ee645c8205d44f6.rmeta: crates/ct-geo/src/lib.rs crates/ct-geo/src/coords.rs crates/ct-geo/src/dem.rs crates/ct-geo/src/error.rs crates/ct-geo/src/grid.rs crates/ct-geo/src/noise.rs crates/ct-geo/src/polygon.rs crates/ct-geo/src/terrain.rs Cargo.toml

crates/ct-geo/src/lib.rs:
crates/ct-geo/src/coords.rs:
crates/ct-geo/src/dem.rs:
crates/ct-geo/src/error.rs:
crates/ct-geo/src/grid.rs:
crates/ct-geo/src/noise.rs:
crates/ct-geo/src/polygon.rs:
crates/ct-geo/src/terrain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
