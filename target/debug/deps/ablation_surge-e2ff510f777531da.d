/root/repo/target/debug/deps/ablation_surge-e2ff510f777531da.d: crates/bench/benches/ablation_surge.rs

/root/repo/target/debug/deps/libablation_surge-e2ff510f777531da.rmeta: crates/bench/benches/ablation_surge.rs

crates/bench/benches/ablation_surge.rs:
