/root/repo/target/debug/deps/properties-2cb488f4828c2ed7.d: crates/ct-geo/tests/properties.rs

/root/repo/target/debug/deps/libproperties-2cb488f4828c2ed7.rmeta: crates/ct-geo/tests/properties.rs

crates/ct-geo/tests/properties.rs:
