/root/repo/target/debug/deps/ct-5e0b490a9c06157e.d: src/bin/ct.rs

/root/repo/target/debug/deps/ct-5e0b490a9c06157e: src/bin/ct.rs

src/bin/ct.rs:
