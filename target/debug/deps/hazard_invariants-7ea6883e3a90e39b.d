/root/repo/target/debug/deps/hazard_invariants-7ea6883e3a90e39b.d: tests/hazard_invariants.rs

/root/repo/target/debug/deps/libhazard_invariants-7ea6883e3a90e39b.rmeta: tests/hazard_invariants.rs

tests/hazard_invariants.rs:
