/root/repo/target/debug/deps/ct_threat-9eb648be6b8e1c69.d: crates/ct-threat/src/lib.rs crates/ct-threat/src/apply.rs crates/ct-threat/src/attacker.rs crates/ct-threat/src/classify.rs crates/ct-threat/src/scenario.rs crates/ct-threat/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libct_threat-9eb648be6b8e1c69.rmeta: crates/ct-threat/src/lib.rs crates/ct-threat/src/apply.rs crates/ct-threat/src/attacker.rs crates/ct-threat/src/classify.rs crates/ct-threat/src/scenario.rs crates/ct-threat/src/state.rs Cargo.toml

crates/ct-threat/src/lib.rs:
crates/ct-threat/src/apply.rs:
crates/ct-threat/src/attacker.rs:
crates/ct-threat/src/classify.rs:
crates/ct-threat/src/scenario.rs:
crates/ct-threat/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
