/root/repo/target/debug/deps/ct_simnet-b25588b2d7016eab.d: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs

/root/repo/target/debug/deps/libct_simnet-b25588b2d7016eab.rlib: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs

/root/repo/target/debug/deps/libct_simnet-b25588b2d7016eab.rmeta: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs

crates/ct-simnet/src/lib.rs:
crates/ct-simnet/src/actor.rs:
crates/ct-simnet/src/fault.rs:
crates/ct-simnet/src/net.rs:
crates/ct-simnet/src/sim.rs:
crates/ct-simnet/src/time.rs:
