/root/repo/target/debug/deps/surge_crossval-3bdb772c3a2298dc.d: tests/surge_crossval.rs

/root/repo/target/debug/deps/surge_crossval-3bdb772c3a2298dc: tests/surge_crossval.rs

tests/surge_crossval.rs:
