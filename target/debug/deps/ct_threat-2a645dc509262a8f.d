/root/repo/target/debug/deps/ct_threat-2a645dc509262a8f.d: crates/ct-threat/src/lib.rs crates/ct-threat/src/apply.rs crates/ct-threat/src/attacker.rs crates/ct-threat/src/classify.rs crates/ct-threat/src/scenario.rs crates/ct-threat/src/state.rs

/root/repo/target/debug/deps/libct_threat-2a645dc509262a8f.rmeta: crates/ct-threat/src/lib.rs crates/ct-threat/src/apply.rs crates/ct-threat/src/attacker.rs crates/ct-threat/src/classify.rs crates/ct-threat/src/scenario.rs crates/ct-threat/src/state.rs

crates/ct-threat/src/lib.rs:
crates/ct-threat/src/apply.rs:
crates/ct-threat/src/attacker.rs:
crates/ct-threat/src/classify.rs:
crates/ct-threat/src/scenario.rs:
crates/ct-threat/src/state.rs:
