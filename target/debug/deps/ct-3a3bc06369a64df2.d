/root/repo/target/debug/deps/ct-3a3bc06369a64df2.d: src/bin/ct.rs

/root/repo/target/debug/deps/libct-3a3bc06369a64df2.rmeta: src/bin/ct.rs

src/bin/ct.rs:
