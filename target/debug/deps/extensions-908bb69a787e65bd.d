/root/repo/target/debug/deps/extensions-908bb69a787e65bd.d: tests/extensions.rs

/root/repo/target/debug/deps/libextensions-908bb69a787e65bd.rmeta: tests/extensions.rs

tests/extensions.rs:
