/root/repo/target/debug/deps/fig11_kahe_intrusion-20ffd7e557fae791.d: crates/bench/benches/fig11_kahe_intrusion.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_kahe_intrusion-20ffd7e557fae791.rmeta: crates/bench/benches/fig11_kahe_intrusion.rs Cargo.toml

crates/bench/benches/fig11_kahe_intrusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
