/root/repo/target/debug/deps/ct_scada-6f024062b7774d7e.d: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libct_scada-6f024062b7774d7e.rmeta: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs Cargo.toml

crates/ct-scada/src/lib.rs:
crates/ct-scada/src/architecture.rs:
crates/ct-scada/src/asset.rs:
crates/ct-scada/src/error.rs:
crates/ct-scada/src/export.rs:
crates/ct-scada/src/oahu.rs:
crates/ct-scada/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
