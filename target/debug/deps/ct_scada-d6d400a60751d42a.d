/root/repo/target/debug/deps/ct_scada-d6d400a60751d42a.d: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs

/root/repo/target/debug/deps/libct_scada-d6d400a60751d42a.rmeta: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs

crates/ct-scada/src/lib.rs:
crates/ct-scada/src/architecture.rs:
crates/ct-scada/src/asset.rs:
crates/ct-scada/src/error.rs:
crates/ct-scada/src/export.rs:
crates/ct-scada/src/oahu.rs:
crates/ct-scada/src/topology.rs:
