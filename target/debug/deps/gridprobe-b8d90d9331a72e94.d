/root/repo/target/debug/deps/gridprobe-b8d90d9331a72e94.d: src/bin/gridprobe.rs

/root/repo/target/debug/deps/libgridprobe-b8d90d9331a72e94.rmeta: src/bin/gridprobe.rs

src/bin/gridprobe.rs:
