/root/repo/target/debug/deps/ct_threat-9b467c18cb06460c.d: crates/ct-threat/src/lib.rs crates/ct-threat/src/apply.rs crates/ct-threat/src/attacker.rs crates/ct-threat/src/classify.rs crates/ct-threat/src/scenario.rs crates/ct-threat/src/state.rs

/root/repo/target/debug/deps/libct_threat-9b467c18cb06460c.rmeta: crates/ct-threat/src/lib.rs crates/ct-threat/src/apply.rs crates/ct-threat/src/attacker.rs crates/ct-threat/src/classify.rs crates/ct-threat/src/scenario.rs crates/ct-threat/src/state.rs

crates/ct-threat/src/lib.rs:
crates/ct-threat/src/apply.rs:
crates/ct-threat/src/attacker.rs:
crates/ct-threat/src/classify.rs:
crates/ct-threat/src/scenario.rs:
crates/ct-threat/src/state.rs:
