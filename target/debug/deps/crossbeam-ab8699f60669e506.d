/root/repo/target/debug/deps/crossbeam-ab8699f60669e506.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-ab8699f60669e506.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-ab8699f60669e506.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
