/root/repo/target/debug/deps/crossbeam-6224d5755d97c870.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-6224d5755d97c870.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
