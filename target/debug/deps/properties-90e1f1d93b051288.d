/root/repo/target/debug/deps/properties-90e1f1d93b051288.d: crates/ct-grid/tests/properties.rs

/root/repo/target/debug/deps/libproperties-90e1f1d93b051288.rmeta: crates/ct-grid/tests/properties.rs

crates/ct-grid/tests/properties.rs:
