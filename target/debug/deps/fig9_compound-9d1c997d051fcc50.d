/root/repo/target/debug/deps/fig9_compound-9d1c997d051fcc50.d: crates/bench/benches/fig9_compound.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_compound-9d1c997d051fcc50.rmeta: crates/bench/benches/fig9_compound.rs Cargo.toml

crates/bench/benches/fig9_compound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
