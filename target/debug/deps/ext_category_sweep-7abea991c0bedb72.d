/root/repo/target/debug/deps/ext_category_sweep-7abea991c0bedb72.d: crates/bench/benches/ext_category_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libext_category_sweep-7abea991c0bedb72.rmeta: crates/bench/benches/ext_category_sweep.rs Cargo.toml

crates/bench/benches/ext_category_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
