/root/repo/target/debug/deps/proptest-604385b2cb84e81a.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-604385b2cb84e81a.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
