/root/repo/target/debug/deps/rand-f8e0416b341940b3.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f8e0416b341940b3.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f8e0416b341940b3.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
