/root/repo/target/debug/deps/ct_bench-2f20f9984c85a464.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libct_bench-2f20f9984c85a464.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
