/root/repo/target/debug/deps/fig6_hurricane-a28a0a5fc044672b.d: crates/bench/benches/fig6_hurricane.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_hurricane-a28a0a5fc044672b.rmeta: crates/bench/benches/fig6_hurricane.rs Cargo.toml

crates/bench/benches/fig6_hurricane.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
