/root/repo/target/debug/deps/ct_replication-99a9927b92f7a4e8.d: crates/ct-replication/src/lib.rs crates/ct-replication/src/client.rs crates/ct-replication/src/deployment.rs crates/ct-replication/src/master.rs crates/ct-replication/src/msg.rs crates/ct-replication/src/replica.rs crates/ct-replication/src/role.rs crates/ct-replication/src/verdict.rs

/root/repo/target/debug/deps/ct_replication-99a9927b92f7a4e8: crates/ct-replication/src/lib.rs crates/ct-replication/src/client.rs crates/ct-replication/src/deployment.rs crates/ct-replication/src/master.rs crates/ct-replication/src/msg.rs crates/ct-replication/src/replica.rs crates/ct-replication/src/role.rs crates/ct-replication/src/verdict.rs

crates/ct-replication/src/lib.rs:
crates/ct-replication/src/client.rs:
crates/ct-replication/src/deployment.rs:
crates/ct-replication/src/master.rs:
crates/ct-replication/src/msg.rs:
crates/ct-replication/src/replica.rs:
crates/ct-replication/src/role.rs:
crates/ct-replication/src/verdict.rs:
