/root/repo/target/debug/deps/fig8_isolation-4a2883d51586d19e.d: crates/bench/benches/fig8_isolation.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_isolation-4a2883d51586d19e.rmeta: crates/bench/benches/fig8_isolation.rs Cargo.toml

crates/bench/benches/fig8_isolation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
