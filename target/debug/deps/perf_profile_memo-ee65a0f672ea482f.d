/root/repo/target/debug/deps/perf_profile_memo-ee65a0f672ea482f.d: crates/bench/benches/perf_profile_memo.rs Cargo.toml

/root/repo/target/debug/deps/libperf_profile_memo-ee65a0f672ea482f.rmeta: crates/bench/benches/perf_profile_memo.rs Cargo.toml

crates/bench/benches/perf_profile_memo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
