/root/repo/target/debug/deps/hazard_invariants-1f86fe136e1f5cec.d: tests/hazard_invariants.rs

/root/repo/target/debug/deps/hazard_invariants-1f86fe136e1f5cec: tests/hazard_invariants.rs

tests/hazard_invariants.rs:
