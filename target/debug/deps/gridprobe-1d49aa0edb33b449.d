/root/repo/target/debug/deps/gridprobe-1d49aa0edb33b449.d: src/bin/gridprobe.rs

/root/repo/target/debug/deps/libgridprobe-1d49aa0edb33b449.rmeta: src/bin/gridprobe.rs

src/bin/gridprobe.rs:
