/root/repo/target/debug/deps/figures-94fb0cc7b90b2bdc.d: tests/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-94fb0cc7b90b2bdc.rmeta: tests/figures.rs Cargo.toml

tests/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
