/root/repo/target/debug/deps/criterion-fff52204f5889b66.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-fff52204f5889b66.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
