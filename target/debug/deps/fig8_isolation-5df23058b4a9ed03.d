/root/repo/target/debug/deps/fig8_isolation-5df23058b4a9ed03.d: crates/bench/benches/fig8_isolation.rs

/root/repo/target/debug/deps/libfig8_isolation-5df23058b4a9ed03.rmeta: crates/bench/benches/fig8_isolation.rs

crates/bench/benches/fig8_isolation.rs:
