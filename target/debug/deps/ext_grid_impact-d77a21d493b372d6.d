/root/repo/target/debug/deps/ext_grid_impact-d77a21d493b372d6.d: crates/bench/benches/ext_grid_impact.rs Cargo.toml

/root/repo/target/debug/deps/libext_grid_impact-d77a21d493b372d6.rmeta: crates/bench/benches/ext_grid_impact.rs Cargo.toml

crates/bench/benches/ext_grid_impact.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
