/root/repo/target/debug/deps/ct_replication-7cf06277666a4b74.d: crates/ct-replication/src/lib.rs crates/ct-replication/src/client.rs crates/ct-replication/src/deployment.rs crates/ct-replication/src/master.rs crates/ct-replication/src/msg.rs crates/ct-replication/src/replica.rs crates/ct-replication/src/role.rs crates/ct-replication/src/verdict.rs

/root/repo/target/debug/deps/libct_replication-7cf06277666a4b74.rmeta: crates/ct-replication/src/lib.rs crates/ct-replication/src/client.rs crates/ct-replication/src/deployment.rs crates/ct-replication/src/master.rs crates/ct-replication/src/msg.rs crates/ct-replication/src/replica.rs crates/ct-replication/src/role.rs crates/ct-replication/src/verdict.rs

crates/ct-replication/src/lib.rs:
crates/ct-replication/src/client.rs:
crates/ct-replication/src/deployment.rs:
crates/ct-replication/src/master.rs:
crates/ct-replication/src/msg.rs:
crates/ct-replication/src/replica.rs:
crates/ct-replication/src/role.rs:
crates/ct-replication/src/verdict.rs:
