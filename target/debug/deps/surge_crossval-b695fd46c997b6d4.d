/root/repo/target/debug/deps/surge_crossval-b695fd46c997b6d4.d: tests/surge_crossval.rs

/root/repo/target/debug/deps/libsurge_crossval-b695fd46c997b6d4.rmeta: tests/surge_crossval.rs

tests/surge_crossval.rs:
