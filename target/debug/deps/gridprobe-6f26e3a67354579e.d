/root/repo/target/debug/deps/gridprobe-6f26e3a67354579e.d: src/bin/gridprobe.rs Cargo.toml

/root/repo/target/debug/deps/libgridprobe-6f26e3a67354579e.rmeta: src/bin/gridprobe.rs Cargo.toml

src/bin/gridprobe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
