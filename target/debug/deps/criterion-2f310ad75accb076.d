/root/repo/target/debug/deps/criterion-2f310ad75accb076.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-2f310ad75accb076.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-2f310ad75accb076.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
