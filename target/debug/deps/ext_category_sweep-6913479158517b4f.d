/root/repo/target/debug/deps/ext_category_sweep-6913479158517b4f.d: crates/bench/benches/ext_category_sweep.rs

/root/repo/target/debug/deps/libext_category_sweep-6913479158517b4f.rmeta: crates/bench/benches/ext_category_sweep.rs

crates/bench/benches/ext_category_sweep.rs:
