/root/repo/target/debug/deps/attacker_equivalence-4d510f7299748638.d: tests/attacker_equivalence.rs

/root/repo/target/debug/deps/attacker_equivalence-4d510f7299748638: tests/attacker_equivalence.rs

tests/attacker_equivalence.rs:
