/root/repo/target/debug/deps/table1_rules-d36aa66e06df9ec1.d: crates/bench/benches/table1_rules.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_rules-d36aa66e06df9ec1.rmeta: crates/bench/benches/table1_rules.rs Cargo.toml

crates/bench/benches/table1_rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
