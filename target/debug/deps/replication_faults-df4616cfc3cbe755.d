/root/repo/target/debug/deps/replication_faults-df4616cfc3cbe755.d: tests/replication_faults.rs

/root/repo/target/debug/deps/replication_faults-df4616cfc3cbe755: tests/replication_faults.rs

tests/replication_faults.rs:
