/root/repo/target/debug/deps/ct_simnet-8ac03468f18e2b11.d: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libct_simnet-8ac03468f18e2b11.rmeta: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs Cargo.toml

crates/ct-simnet/src/lib.rs:
crates/ct-simnet/src/actor.rs:
crates/ct-simnet/src/fault.rs:
crates/ct-simnet/src/net.rs:
crates/ct-simnet/src/sim.rs:
crates/ct-simnet/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
