/root/repo/target/debug/deps/properties-c8beb429465c79e6.d: crates/ct-geo/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c8beb429465c79e6.rmeta: crates/ct-geo/tests/properties.rs Cargo.toml

crates/ct-geo/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
