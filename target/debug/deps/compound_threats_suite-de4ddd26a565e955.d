/root/repo/target/debug/deps/compound_threats_suite-de4ddd26a565e955.d: src/lib.rs

/root/repo/target/debug/deps/libcompound_threats_suite-de4ddd26a565e955.rlib: src/lib.rs

/root/repo/target/debug/deps/libcompound_threats_suite-de4ddd26a565e955.rmeta: src/lib.rs

src/lib.rs:
