/root/repo/target/debug/deps/replication_faults-0cd1721d8031e92e.d: tests/replication_faults.rs

/root/repo/target/debug/deps/libreplication_faults-0cd1721d8031e92e.rmeta: tests/replication_faults.rs

tests/replication_faults.rs:
