/root/repo/target/debug/deps/properties-ca589cc0a036d0c0.d: crates/ct-simnet/tests/properties.rs

/root/repo/target/debug/deps/properties-ca589cc0a036d0c0: crates/ct-simnet/tests/properties.rs

crates/ct-simnet/tests/properties.rs:
