/root/repo/target/debug/deps/compound_threats-dd5472273f88050f.d: crates/core/src/lib.rs crates/core/src/attacker_power.rs crates/core/src/availability.rs crates/core/src/crossval.rs crates/core/src/error.rs crates/core/src/figures.rs crates/core/src/grid_impact.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/placement.rs crates/core/src/profile.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libcompound_threats-dd5472273f88050f.rmeta: crates/core/src/lib.rs crates/core/src/attacker_power.rs crates/core/src/availability.rs crates/core/src/crossval.rs crates/core/src/error.rs crates/core/src/figures.rs crates/core/src/grid_impact.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/placement.rs crates/core/src/profile.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/summary.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/attacker_power.rs:
crates/core/src/availability.rs:
crates/core/src/crossval.rs:
crates/core/src/error.rs:
crates/core/src/figures.rs:
crates/core/src/grid_impact.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/placement.rs:
crates/core/src/profile.rs:
crates/core/src/report.rs:
crates/core/src/sensitivity.rs:
crates/core/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
