/root/repo/target/debug/deps/ct-f995caa6987b3297.d: src/bin/ct.rs Cargo.toml

/root/repo/target/debug/deps/libct-f995caa6987b3297.rmeta: src/bin/ct.rs Cargo.toml

src/bin/ct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
