/root/repo/target/debug/deps/perf_profile_memo-240f3192f5702b5d.d: crates/bench/benches/perf_profile_memo.rs

/root/repo/target/debug/deps/libperf_profile_memo-240f3192f5702b5d.rmeta: crates/bench/benches/perf_profile_memo.rs

crates/bench/benches/perf_profile_memo.rs:
