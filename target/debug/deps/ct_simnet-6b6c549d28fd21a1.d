/root/repo/target/debug/deps/ct_simnet-6b6c549d28fd21a1.d: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs

/root/repo/target/debug/deps/libct_simnet-6b6c549d28fd21a1.rmeta: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs

crates/ct-simnet/src/lib.rs:
crates/ct-simnet/src/actor.rs:
crates/ct-simnet/src/fault.rs:
crates/ct-simnet/src/net.rs:
crates/ct-simnet/src/sim.rs:
crates/ct-simnet/src/time.rs:
