/root/repo/target/debug/deps/ct_replication-b7164a01561dcda4.d: crates/ct-replication/src/lib.rs crates/ct-replication/src/client.rs crates/ct-replication/src/deployment.rs crates/ct-replication/src/master.rs crates/ct-replication/src/msg.rs crates/ct-replication/src/replica.rs crates/ct-replication/src/role.rs crates/ct-replication/src/verdict.rs Cargo.toml

/root/repo/target/debug/deps/libct_replication-b7164a01561dcda4.rmeta: crates/ct-replication/src/lib.rs crates/ct-replication/src/client.rs crates/ct-replication/src/deployment.rs crates/ct-replication/src/master.rs crates/ct-replication/src/msg.rs crates/ct-replication/src/replica.rs crates/ct-replication/src/role.rs crates/ct-replication/src/verdict.rs Cargo.toml

crates/ct-replication/src/lib.rs:
crates/ct-replication/src/client.rs:
crates/ct-replication/src/deployment.rs:
crates/ct-replication/src/master.rs:
crates/ct-replication/src/msg.rs:
crates/ct-replication/src/replica.rs:
crates/ct-replication/src/role.rs:
crates/ct-replication/src/verdict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
