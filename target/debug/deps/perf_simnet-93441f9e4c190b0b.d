/root/repo/target/debug/deps/perf_simnet-93441f9e4c190b0b.d: crates/bench/benches/perf_simnet.rs Cargo.toml

/root/repo/target/debug/deps/libperf_simnet-93441f9e4c190b0b.rmeta: crates/bench/benches/perf_simnet.rs Cargo.toml

crates/bench/benches/perf_simnet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
