/root/repo/target/debug/deps/ablation_surge-133e389bedfebd38.d: crates/bench/benches/ablation_surge.rs Cargo.toml

/root/repo/target/debug/deps/libablation_surge-133e389bedfebd38.rmeta: crates/bench/benches/ablation_surge.rs Cargo.toml

crates/bench/benches/ablation_surge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
