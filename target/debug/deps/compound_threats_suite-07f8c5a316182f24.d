/root/repo/target/debug/deps/compound_threats_suite-07f8c5a316182f24.d: src/lib.rs

/root/repo/target/debug/deps/compound_threats_suite-07f8c5a316182f24: src/lib.rs

src/lib.rs:
