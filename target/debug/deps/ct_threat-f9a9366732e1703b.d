/root/repo/target/debug/deps/ct_threat-f9a9366732e1703b.d: crates/ct-threat/src/lib.rs crates/ct-threat/src/apply.rs crates/ct-threat/src/attacker.rs crates/ct-threat/src/classify.rs crates/ct-threat/src/scenario.rs crates/ct-threat/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libct_threat-f9a9366732e1703b.rmeta: crates/ct-threat/src/lib.rs crates/ct-threat/src/apply.rs crates/ct-threat/src/attacker.rs crates/ct-threat/src/classify.rs crates/ct-threat/src/scenario.rs crates/ct-threat/src/state.rs Cargo.toml

crates/ct-threat/src/lib.rs:
crates/ct-threat/src/apply.rs:
crates/ct-threat/src/attacker.rs:
crates/ct-threat/src/classify.rs:
crates/ct-threat/src/scenario.rs:
crates/ct-threat/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
