/root/repo/target/debug/deps/gridprobe-007ec3b00c5ba960.d: src/bin/gridprobe.rs Cargo.toml

/root/repo/target/debug/deps/libgridprobe-007ec3b00c5ba960.rmeta: src/bin/gridprobe.rs Cargo.toml

src/bin/gridprobe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
