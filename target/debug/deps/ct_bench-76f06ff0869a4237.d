/root/repo/target/debug/deps/ct_bench-76f06ff0869a4237.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libct_bench-76f06ff0869a4237.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
