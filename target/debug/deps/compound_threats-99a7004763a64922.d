/root/repo/target/debug/deps/compound_threats-99a7004763a64922.d: crates/core/src/lib.rs crates/core/src/attacker_power.rs crates/core/src/availability.rs crates/core/src/crossval.rs crates/core/src/error.rs crates/core/src/figures.rs crates/core/src/grid_impact.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/placement.rs crates/core/src/profile.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/summary.rs

/root/repo/target/debug/deps/libcompound_threats-99a7004763a64922.rlib: crates/core/src/lib.rs crates/core/src/attacker_power.rs crates/core/src/availability.rs crates/core/src/crossval.rs crates/core/src/error.rs crates/core/src/figures.rs crates/core/src/grid_impact.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/placement.rs crates/core/src/profile.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/summary.rs

/root/repo/target/debug/deps/libcompound_threats-99a7004763a64922.rmeta: crates/core/src/lib.rs crates/core/src/attacker_power.rs crates/core/src/availability.rs crates/core/src/crossval.rs crates/core/src/error.rs crates/core/src/figures.rs crates/core/src/grid_impact.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/placement.rs crates/core/src/profile.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/summary.rs

crates/core/src/lib.rs:
crates/core/src/attacker_power.rs:
crates/core/src/availability.rs:
crates/core/src/crossval.rs:
crates/core/src/error.rs:
crates/core/src/figures.rs:
crates/core/src/grid_impact.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/placement.rs:
crates/core/src/profile.rs:
crates/core/src/report.rs:
crates/core/src/sensitivity.rs:
crates/core/src/summary.rs:
