/root/repo/target/debug/deps/ct_simnet-44568ae938bc8087.d: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs

/root/repo/target/debug/deps/ct_simnet-44568ae938bc8087: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs

crates/ct-simnet/src/lib.rs:
crates/ct-simnet/src/actor.rs:
crates/ct-simnet/src/fault.rs:
crates/ct-simnet/src/net.rs:
crates/ct-simnet/src/sim.rs:
crates/ct-simnet/src/time.rs:
