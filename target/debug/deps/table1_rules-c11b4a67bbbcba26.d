/root/repo/target/debug/deps/table1_rules-c11b4a67bbbcba26.d: crates/bench/benches/table1_rules.rs

/root/repo/target/debug/deps/libtable1_rules-c11b4a67bbbcba26.rmeta: crates/bench/benches/table1_rules.rs

crates/bench/benches/table1_rules.rs:
