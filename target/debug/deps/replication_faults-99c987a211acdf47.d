/root/repo/target/debug/deps/replication_faults-99c987a211acdf47.d: tests/replication_faults.rs Cargo.toml

/root/repo/target/debug/deps/libreplication_faults-99c987a211acdf47.rmeta: tests/replication_faults.rs Cargo.toml

tests/replication_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
