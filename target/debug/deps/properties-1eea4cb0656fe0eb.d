/root/repo/target/debug/deps/properties-1eea4cb0656fe0eb.d: crates/ct-grid/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-1eea4cb0656fe0eb.rmeta: crates/ct-grid/tests/properties.rs Cargo.toml

crates/ct-grid/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
