/root/repo/target/debug/deps/figures-eb51616fb1d43fec.d: tests/figures.rs

/root/repo/target/debug/deps/figures-eb51616fb1d43fec: tests/figures.rs

tests/figures.rs:
