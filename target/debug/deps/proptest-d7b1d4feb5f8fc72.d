/root/repo/target/debug/deps/proptest-d7b1d4feb5f8fc72.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d7b1d4feb5f8fc72.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d7b1d4feb5f8fc72.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
