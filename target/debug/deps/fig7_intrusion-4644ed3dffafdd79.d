/root/repo/target/debug/deps/fig7_intrusion-4644ed3dffafdd79.d: crates/bench/benches/fig7_intrusion.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_intrusion-4644ed3dffafdd79.rmeta: crates/bench/benches/fig7_intrusion.rs Cargo.toml

crates/bench/benches/fig7_intrusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
