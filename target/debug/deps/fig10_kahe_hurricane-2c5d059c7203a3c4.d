/root/repo/target/debug/deps/fig10_kahe_hurricane-2c5d059c7203a3c4.d: crates/bench/benches/fig10_kahe_hurricane.rs

/root/repo/target/debug/deps/libfig10_kahe_hurricane-2c5d059c7203a3c4.rmeta: crates/bench/benches/fig10_kahe_hurricane.rs

crates/bench/benches/fig10_kahe_hurricane.rs:
