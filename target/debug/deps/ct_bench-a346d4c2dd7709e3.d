/root/repo/target/debug/deps/ct_bench-a346d4c2dd7709e3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libct_bench-a346d4c2dd7709e3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
