/root/repo/target/debug/deps/ct-30ad4dca4c21ee22.d: src/bin/ct.rs Cargo.toml

/root/repo/target/debug/deps/libct-30ad4dca4c21ee22.rmeta: src/bin/ct.rs Cargo.toml

src/bin/ct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
