/root/repo/target/debug/deps/ct_hydro-88e7cfbbeddf0ef2.d: crates/ct-hydro/src/lib.rs crates/ct-hydro/src/category.rs crates/ct-hydro/src/ensemble.rs crates/ct-hydro/src/error.rs crates/ct-hydro/src/export.rs crates/ct-hydro/src/inundation.rs crates/ct-hydro/src/parametric.rs crates/ct-hydro/src/realization.rs crates/ct-hydro/src/sampling.rs crates/ct-hydro/src/shoreline.rs crates/ct-hydro/src/stations.rs crates/ct-hydro/src/swe.rs crates/ct-hydro/src/track.rs crates/ct-hydro/src/wind.rs

/root/repo/target/debug/deps/libct_hydro-88e7cfbbeddf0ef2.rmeta: crates/ct-hydro/src/lib.rs crates/ct-hydro/src/category.rs crates/ct-hydro/src/ensemble.rs crates/ct-hydro/src/error.rs crates/ct-hydro/src/export.rs crates/ct-hydro/src/inundation.rs crates/ct-hydro/src/parametric.rs crates/ct-hydro/src/realization.rs crates/ct-hydro/src/sampling.rs crates/ct-hydro/src/shoreline.rs crates/ct-hydro/src/stations.rs crates/ct-hydro/src/swe.rs crates/ct-hydro/src/track.rs crates/ct-hydro/src/wind.rs

crates/ct-hydro/src/lib.rs:
crates/ct-hydro/src/category.rs:
crates/ct-hydro/src/ensemble.rs:
crates/ct-hydro/src/error.rs:
crates/ct-hydro/src/export.rs:
crates/ct-hydro/src/inundation.rs:
crates/ct-hydro/src/parametric.rs:
crates/ct-hydro/src/realization.rs:
crates/ct-hydro/src/sampling.rs:
crates/ct-hydro/src/shoreline.rs:
crates/ct-hydro/src/stations.rs:
crates/ct-hydro/src/swe.rs:
crates/ct-hydro/src/track.rs:
crates/ct-hydro/src/wind.rs:
