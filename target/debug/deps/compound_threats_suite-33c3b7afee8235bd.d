/root/repo/target/debug/deps/compound_threats_suite-33c3b7afee8235bd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcompound_threats_suite-33c3b7afee8235bd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
