/root/repo/target/debug/deps/ct_simnet-c4e005ea3f2bee05.d: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs

/root/repo/target/debug/deps/libct_simnet-c4e005ea3f2bee05.rmeta: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs

crates/ct-simnet/src/lib.rs:
crates/ct-simnet/src/actor.rs:
crates/ct-simnet/src/fault.rs:
crates/ct-simnet/src/net.rs:
crates/ct-simnet/src/sim.rs:
crates/ct-simnet/src/time.rs:
