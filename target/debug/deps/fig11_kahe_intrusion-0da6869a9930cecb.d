/root/repo/target/debug/deps/fig11_kahe_intrusion-0da6869a9930cecb.d: crates/bench/benches/fig11_kahe_intrusion.rs

/root/repo/target/debug/deps/libfig11_kahe_intrusion-0da6869a9930cecb.rmeta: crates/bench/benches/fig11_kahe_intrusion.rs

crates/bench/benches/fig11_kahe_intrusion.rs:
