/root/repo/target/debug/deps/ct_bench-bba6ac63f2d508ff.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libct_bench-bba6ac63f2d508ff.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libct_bench-bba6ac63f2d508ff.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
