/root/repo/target/release/examples/surge_explorer-4cc3289e76c660f0.d: examples/surge_explorer.rs

/root/repo/target/release/examples/surge_explorer-4cc3289e76c660f0: examples/surge_explorer.rs

examples/surge_explorer.rs:
