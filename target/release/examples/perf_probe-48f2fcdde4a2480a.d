/root/repo/target/release/examples/perf_probe-48f2fcdde4a2480a.d: crates/bench/examples/perf_probe.rs

/root/repo/target/release/examples/perf_probe-48f2fcdde4a2480a: crates/bench/examples/perf_probe.rs

crates/bench/examples/perf_probe.rs:
