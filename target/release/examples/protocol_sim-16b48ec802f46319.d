/root/repo/target/release/examples/protocol_sim-16b48ec802f46319.d: examples/protocol_sim.rs

/root/repo/target/release/examples/protocol_sim-16b48ec802f46319: examples/protocol_sim.rs

examples/protocol_sim.rs:
