/root/repo/target/release/deps/rand-4a0739ebe8391560.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-4a0739ebe8391560.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-4a0739ebe8391560.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
