/root/repo/target/release/deps/ct_grid-63fe5685de15d084.d: crates/ct-grid/src/lib.rs crates/ct-grid/src/cascade.rs crates/ct-grid/src/fragility.rs crates/ct-grid/src/linalg.rs crates/ct-grid/src/network.rs crates/ct-grid/src/oahu.rs crates/ct-grid/src/powerflow.rs

/root/repo/target/release/deps/libct_grid-63fe5685de15d084.rlib: crates/ct-grid/src/lib.rs crates/ct-grid/src/cascade.rs crates/ct-grid/src/fragility.rs crates/ct-grid/src/linalg.rs crates/ct-grid/src/network.rs crates/ct-grid/src/oahu.rs crates/ct-grid/src/powerflow.rs

/root/repo/target/release/deps/libct_grid-63fe5685de15d084.rmeta: crates/ct-grid/src/lib.rs crates/ct-grid/src/cascade.rs crates/ct-grid/src/fragility.rs crates/ct-grid/src/linalg.rs crates/ct-grid/src/network.rs crates/ct-grid/src/oahu.rs crates/ct-grid/src/powerflow.rs

crates/ct-grid/src/lib.rs:
crates/ct-grid/src/cascade.rs:
crates/ct-grid/src/fragility.rs:
crates/ct-grid/src/linalg.rs:
crates/ct-grid/src/network.rs:
crates/ct-grid/src/oahu.rs:
crates/ct-grid/src/powerflow.rs:
