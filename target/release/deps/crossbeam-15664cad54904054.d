/root/repo/target/release/deps/crossbeam-15664cad54904054.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-15664cad54904054.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-15664cad54904054.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
