/root/repo/target/release/deps/ct_scada-b60e59c72d3c633c.d: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs

/root/repo/target/release/deps/libct_scada-b60e59c72d3c633c.rlib: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs

/root/repo/target/release/deps/libct_scada-b60e59c72d3c633c.rmeta: crates/ct-scada/src/lib.rs crates/ct-scada/src/architecture.rs crates/ct-scada/src/asset.rs crates/ct-scada/src/error.rs crates/ct-scada/src/export.rs crates/ct-scada/src/oahu.rs crates/ct-scada/src/topology.rs

crates/ct-scada/src/lib.rs:
crates/ct-scada/src/architecture.rs:
crates/ct-scada/src/asset.rs:
crates/ct-scada/src/error.rs:
crates/ct-scada/src/export.rs:
crates/ct-scada/src/oahu.rs:
crates/ct-scada/src/topology.rs:
