/root/repo/target/release/deps/proptest-a01f86c5ce8ff3a6.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-a01f86c5ce8ff3a6.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-a01f86c5ce8ff3a6.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
