/root/repo/target/release/deps/compound_threats-8967909beb5a0770.d: crates/core/src/lib.rs crates/core/src/attacker_power.rs crates/core/src/availability.rs crates/core/src/crossval.rs crates/core/src/error.rs crates/core/src/figures.rs crates/core/src/grid_impact.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/placement.rs crates/core/src/profile.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/summary.rs

/root/repo/target/release/deps/libcompound_threats-8967909beb5a0770.rlib: crates/core/src/lib.rs crates/core/src/attacker_power.rs crates/core/src/availability.rs crates/core/src/crossval.rs crates/core/src/error.rs crates/core/src/figures.rs crates/core/src/grid_impact.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/placement.rs crates/core/src/profile.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/summary.rs

/root/repo/target/release/deps/libcompound_threats-8967909beb5a0770.rmeta: crates/core/src/lib.rs crates/core/src/attacker_power.rs crates/core/src/availability.rs crates/core/src/crossval.rs crates/core/src/error.rs crates/core/src/figures.rs crates/core/src/grid_impact.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/placement.rs crates/core/src/profile.rs crates/core/src/report.rs crates/core/src/sensitivity.rs crates/core/src/summary.rs

crates/core/src/lib.rs:
crates/core/src/attacker_power.rs:
crates/core/src/availability.rs:
crates/core/src/crossval.rs:
crates/core/src/error.rs:
crates/core/src/figures.rs:
crates/core/src/grid_impact.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/placement.rs:
crates/core/src/profile.rs:
crates/core/src/report.rs:
crates/core/src/sensitivity.rs:
crates/core/src/summary.rs:
