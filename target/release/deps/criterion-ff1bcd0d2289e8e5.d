/root/repo/target/release/deps/criterion-ff1bcd0d2289e8e5.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ff1bcd0d2289e8e5.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ff1bcd0d2289e8e5.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
