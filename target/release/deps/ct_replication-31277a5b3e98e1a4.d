/root/repo/target/release/deps/ct_replication-31277a5b3e98e1a4.d: crates/ct-replication/src/lib.rs crates/ct-replication/src/client.rs crates/ct-replication/src/deployment.rs crates/ct-replication/src/master.rs crates/ct-replication/src/msg.rs crates/ct-replication/src/replica.rs crates/ct-replication/src/role.rs crates/ct-replication/src/verdict.rs

/root/repo/target/release/deps/libct_replication-31277a5b3e98e1a4.rlib: crates/ct-replication/src/lib.rs crates/ct-replication/src/client.rs crates/ct-replication/src/deployment.rs crates/ct-replication/src/master.rs crates/ct-replication/src/msg.rs crates/ct-replication/src/replica.rs crates/ct-replication/src/role.rs crates/ct-replication/src/verdict.rs

/root/repo/target/release/deps/libct_replication-31277a5b3e98e1a4.rmeta: crates/ct-replication/src/lib.rs crates/ct-replication/src/client.rs crates/ct-replication/src/deployment.rs crates/ct-replication/src/master.rs crates/ct-replication/src/msg.rs crates/ct-replication/src/replica.rs crates/ct-replication/src/role.rs crates/ct-replication/src/verdict.rs

crates/ct-replication/src/lib.rs:
crates/ct-replication/src/client.rs:
crates/ct-replication/src/deployment.rs:
crates/ct-replication/src/master.rs:
crates/ct-replication/src/msg.rs:
crates/ct-replication/src/replica.rs:
crates/ct-replication/src/role.rs:
crates/ct-replication/src/verdict.rs:
