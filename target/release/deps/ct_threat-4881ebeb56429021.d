/root/repo/target/release/deps/ct_threat-4881ebeb56429021.d: crates/ct-threat/src/lib.rs crates/ct-threat/src/apply.rs crates/ct-threat/src/attacker.rs crates/ct-threat/src/classify.rs crates/ct-threat/src/scenario.rs crates/ct-threat/src/state.rs

/root/repo/target/release/deps/libct_threat-4881ebeb56429021.rlib: crates/ct-threat/src/lib.rs crates/ct-threat/src/apply.rs crates/ct-threat/src/attacker.rs crates/ct-threat/src/classify.rs crates/ct-threat/src/scenario.rs crates/ct-threat/src/state.rs

/root/repo/target/release/deps/libct_threat-4881ebeb56429021.rmeta: crates/ct-threat/src/lib.rs crates/ct-threat/src/apply.rs crates/ct-threat/src/attacker.rs crates/ct-threat/src/classify.rs crates/ct-threat/src/scenario.rs crates/ct-threat/src/state.rs

crates/ct-threat/src/lib.rs:
crates/ct-threat/src/apply.rs:
crates/ct-threat/src/attacker.rs:
crates/ct-threat/src/classify.rs:
crates/ct-threat/src/scenario.rs:
crates/ct-threat/src/state.rs:
