/root/repo/target/release/deps/serde-577e27a3282eeaeb.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-577e27a3282eeaeb.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-577e27a3282eeaeb.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
