/root/repo/target/release/deps/ct_simnet-c786624f01b29de6.d: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs

/root/repo/target/release/deps/libct_simnet-c786624f01b29de6.rlib: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs

/root/repo/target/release/deps/libct_simnet-c786624f01b29de6.rmeta: crates/ct-simnet/src/lib.rs crates/ct-simnet/src/actor.rs crates/ct-simnet/src/fault.rs crates/ct-simnet/src/net.rs crates/ct-simnet/src/sim.rs crates/ct-simnet/src/time.rs

crates/ct-simnet/src/lib.rs:
crates/ct-simnet/src/actor.rs:
crates/ct-simnet/src/fault.rs:
crates/ct-simnet/src/net.rs:
crates/ct-simnet/src/sim.rs:
crates/ct-simnet/src/time.rs:
