/root/repo/target/release/deps/compound_threats_suite-943aaa2cb7e77693.d: src/lib.rs

/root/repo/target/release/deps/libcompound_threats_suite-943aaa2cb7e77693.rlib: src/lib.rs

/root/repo/target/release/deps/libcompound_threats_suite-943aaa2cb7e77693.rmeta: src/lib.rs

src/lib.rs:
