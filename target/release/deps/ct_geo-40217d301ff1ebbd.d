/root/repo/target/release/deps/ct_geo-40217d301ff1ebbd.d: crates/ct-geo/src/lib.rs crates/ct-geo/src/coords.rs crates/ct-geo/src/dem.rs crates/ct-geo/src/error.rs crates/ct-geo/src/grid.rs crates/ct-geo/src/noise.rs crates/ct-geo/src/polygon.rs crates/ct-geo/src/terrain.rs

/root/repo/target/release/deps/libct_geo-40217d301ff1ebbd.rlib: crates/ct-geo/src/lib.rs crates/ct-geo/src/coords.rs crates/ct-geo/src/dem.rs crates/ct-geo/src/error.rs crates/ct-geo/src/grid.rs crates/ct-geo/src/noise.rs crates/ct-geo/src/polygon.rs crates/ct-geo/src/terrain.rs

/root/repo/target/release/deps/libct_geo-40217d301ff1ebbd.rmeta: crates/ct-geo/src/lib.rs crates/ct-geo/src/coords.rs crates/ct-geo/src/dem.rs crates/ct-geo/src/error.rs crates/ct-geo/src/grid.rs crates/ct-geo/src/noise.rs crates/ct-geo/src/polygon.rs crates/ct-geo/src/terrain.rs

crates/ct-geo/src/lib.rs:
crates/ct-geo/src/coords.rs:
crates/ct-geo/src/dem.rs:
crates/ct-geo/src/error.rs:
crates/ct-geo/src/grid.rs:
crates/ct-geo/src/noise.rs:
crates/ct-geo/src/polygon.rs:
crates/ct-geo/src/terrain.rs:
