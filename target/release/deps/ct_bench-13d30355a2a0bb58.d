/root/repo/target/release/deps/ct_bench-13d30355a2a0bb58.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libct_bench-13d30355a2a0bb58.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libct_bench-13d30355a2a0bb58.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
