//! `ct check`'s two schedule tiers must tell the same story.
//!
//! For the paper's two-site (hot-standby) deployments we can afford
//! both tiers in a test run: bounded exhaustive exploration of
//! delivery orderings and seeded randomized fault campaigns. Both
//! must agree with Table I's rule on every reachable worst-case
//! state, and with each other on the worst observed color — and every
//! violation a randomized campaign reports must replay from its seed.
//!
//! Set `CT_CHECK_SCHEDULES` to raise the campaign size (CI uses a
//! larger value than the local default).

use compound_threats::check::{check_cell, CheckMode, CheckOptions, CheckReport};
use ct_scada::Architecture;
use ct_threat::ThreatScenario;
use proptest::prelude::*;

fn schedules() -> u64 {
    std::env::var("CT_CHECK_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
}

fn check(arch: Architecture, scenario: ThreatScenario, mode: CheckMode) -> CheckReport {
    check_cell(&CheckOptions {
        architecture: arch,
        scenario,
        mode,
    })
}

/// Exhaustive exploration at depth 2 confirms every Table I cell of
/// the hot-standby architectures, and the intrusion cells (gray by
/// rule) come with a replayable choice-point trace.
#[test]
fn exhaustive_tier_confirms_the_two_site_columns() {
    for arch in [Architecture::C2, Architecture::C2_2] {
        for scenario in ThreatScenario::ALL {
            let report = check(arch, scenario, CheckMode::Exhaustive { depth: 2 });
            assert!(
                report.ok(),
                "{} / {} disagrees:\n{}",
                arch.label(),
                scenario.keyword(),
                report.to_csv()
            );
            if scenario.budget().intrusions > 0 {
                assert!(
                    report.violations() > 0,
                    "{} / {}: gray cell must yield violations",
                    arch.label(),
                    scenario.keyword()
                );
                let c = report.counterexample().expect("replayable counterexample");
                assert!(c.contains("trace="), "{c}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For any campaign seed, the randomized tier agrees with the
    /// rule on every reachable state of the two-site columns, and its
    /// worst observed color matches the exhaustive tier's.
    #[test]
    fn randomized_tier_matches_exhaustive_for_any_seed(seed in 0u64..1_000) {
        for arch in [Architecture::C2, Architecture::C2_2] {
            for scenario in ThreatScenario::ALL {
                let exhaustive = check(arch, scenario, CheckMode::Exhaustive { depth: 1 });
                let randomized = check(
                    arch,
                    scenario,
                    CheckMode::Randomized { schedules: schedules(), seed },
                );
                prop_assert!(exhaustive.ok(), "{}", exhaustive.to_csv());
                prop_assert!(randomized.ok(), "{}", randomized.to_csv());
                prop_assert_eq!(exhaustive.states.len(), randomized.states.len());
                for (e, r) in exhaustive.states.iter().zip(randomized.states.iter()) {
                    prop_assert_eq!(
                        e.worst,
                        r.worst,
                        "{} / {} / {}: exhaustive worst {} vs randomized worst {}",
                        arch.label(),
                        scenario.keyword(),
                        e.state,
                        e.worst,
                        r.worst
                    );
                }
            }
        }
    }
}

/// A violation seed reported by a randomized campaign replays: a
/// one-schedule campaign with that exact seed reproduces a violation
/// on the same state.
#[test]
fn campaign_counterexamples_replay_from_their_seed() {
    let report = check(
        Architecture::C2_2,
        ThreatScenario::HurricaneIntrusion,
        CheckMode::Randomized {
            schedules: schedules(),
            seed: 11,
        },
    );
    assert!(report.ok(), "{}", report.to_csv());
    let c = report.counterexample().expect("gray cell yields a seed");
    // "state<N>:seed=<S>"
    let (state_part, seed_part) = c.split_once(':').expect("tagged counterexample");
    let index: usize = state_part.trim_start_matches("state").parse().unwrap();
    let seed: u64 = seed_part.trim_start_matches("seed=").parse().unwrap();

    let replay = check(
        Architecture::C2_2,
        ThreatScenario::HurricaneIntrusion,
        CheckMode::Randomized { schedules: 1, seed },
    );
    let state = &replay.states[index];
    assert!(
        state.violations >= 1,
        "seed {seed} must reproduce the violation on state {index}:\n{}",
        replay.to_csv()
    );
    assert_eq!(
        state.counterexample.as_deref(),
        Some(format!("seed={seed}").as_str())
    );
}

/// The same options produce byte-identical reports — campaigns are
/// deterministic functions of (cell, mode, seed).
#[test]
fn check_reports_are_reproducible() {
    let opts = CheckOptions {
        architecture: Architecture::C2,
        scenario: ThreatScenario::HurricaneIntrusionIsolation,
        mode: CheckMode::Randomized {
            schedules: 3,
            seed: 42,
        },
    };
    assert_eq!(check_cell(&opts).to_csv(), check_cell(&opts).to_csv());
}
