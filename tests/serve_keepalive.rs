//! Keep-alive contracts of the serving tier, from the parser up to a
//! live daemon.
//!
//! Property layer: the server-side request parser
//! ([`ct_store::remote::parse_request`]) must survive arbitrary
//! garbage without panicking, agree with itself across every split
//! point of a valid byte stream (readiness loops deliver bytes in
//! arbitrary fragments), and parse pipelined concatenations
//! sequentially.
//!
//! Integration layer: a live server honors keep-alive across
//! requests, keeps the connection alive through a *routed* 4xx,
//! closes after garbage with a 400 (and keeps serving everyone
//! else), enforces the idle timeout (`CT_SERVE_IDLE_MS` /
//! `ServeOptions::idle_ms`) and the max-requests bound, and counts
//! all of it (`serve.keepalive_reuses`, `serve.idle_closes`,
//! `serve.bad_requests`).

use compound_threats::serve::{ServeOptions, Server};
use ct_store::remote::{
    encode_request, parse_request, parse_response, read_response, write_request, Response,
};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Unique scratch directory for one test, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "ct-keepalive-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&root).ok();
        Self(root)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn serve_with(root: &std::path::Path, configure: impl FnOnce(&mut ServeOptions)) -> Server {
    let mut options = ServeOptions {
        addr: "127.0.0.1:0".into(),
        ..ServeOptions::default()
    };
    configure(&mut options);
    Server::bind(root, &options).unwrap()
}

/// Reads `n` responses off one kept-alive socket with the
/// incremental parser (they may arrive in one burst).
fn read_responses(stream: &mut TcpStream, n: usize) -> Vec<Response> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = Vec::new();
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    while out.len() < n {
        if let Some((response, used)) = parse_response(&buf).unwrap() {
            buf.drain(..used);
            out.push(response);
            continue;
        }
        let got = stream.read(&mut chunk).unwrap();
        assert!(
            got > 0,
            "server closed after {} of {n} responses",
            out.len()
        );
        buf.extend_from_slice(&chunk[..got]);
    }
    out
}

fn global_counter(name: &str) -> u64 {
    ct_obs::snapshot().counter(name).unwrap_or(0)
}

proptest! {
    /// Arbitrary bytes never panic the parser: every outcome is
    /// need-more, a parsed request, or a classified error.
    #[test]
    fn request_parser_survives_arbitrary_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        match parse_request(&bytes) {
            Ok(None) | Ok(Some(_)) => {}
            Err(e) => {
                // Answerable errors carry a 4xx; unanswerable ones
                // (non-UTF-8 heads) still name themselves.
                if let Some((status, _)) = e.status() {
                    prop_assert!((400..500).contains(&status));
                }
                prop_assert!(!e.detail().is_empty());
            }
        }
    }

    /// Every split point of a valid two-request pipeline agrees with
    /// the whole: prefixes are need-more or the complete first
    /// request, and the full buffer yields both in order.
    #[test]
    fn split_points_agree_with_the_whole_stream(
        split_seed in any::<u16>(),
        body in prop::collection::vec(any::<u8>(), 0..64),
        keep_first in any::<bool>(),
    ) {
        let first = encode_request("PUT", "/objects/aa", &body, keep_first);
        let second = encode_request("GET", "/healthz", &[], true);
        let wire: Vec<u8> = [first.clone(), second].concat();
        let split = split_seed as usize % (wire.len() + 1);

        let (one, used) = parse_request(&wire).unwrap().expect("complete first request");
        prop_assert_eq!(used, first.len());
        prop_assert_eq!(&one.method, "PUT");
        prop_assert_eq!(&one.body, &body);
        prop_assert_eq!(one.keep_alive, keep_first);
        let (two, used2) = parse_request(&wire[used..]).unwrap().expect("complete second");
        prop_assert_eq!(used + used2, wire.len());
        prop_assert_eq!(&two.target, "/healthz");

        match parse_request(&wire[..split]).unwrap() {
            // A prefix shorter than the first request needs more.
            None => prop_assert!(split < first.len()),
            // A longer prefix parses the identical first request.
            Some((prefix_first, prefix_used)) => {
                prop_assert!(split >= first.len());
                prop_assert_eq!(prefix_used, first.len());
                prop_assert_eq!(prefix_first.method, one.method);
                prop_assert_eq!(prefix_first.target, one.target);
                prop_assert_eq!(prefix_first.body, one.body);
            }
        }
    }
}

#[test]
fn one_socket_serves_many_requests_and_counts_reuse() {
    let scratch = Scratch::new("reuse");
    let server = serve_with(&scratch.0, |_| {});
    let reuses_before = global_counter(ct_obs::names::SERVE_KEEPALIVE_REUSES);

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Three pipelined requests, one write.
    let mut wire = Vec::new();
    for _ in 0..3 {
        wire.extend_from_slice(&encode_request("GET", "/healthz", &[], true));
    }
    stream.write_all(&wire).unwrap();
    let responses = read_responses(&mut stream, 3);
    for response in &responses {
        assert_eq!(response.status, 200);
        assert!(response.keep_alive);
        assert_eq!(response.body, b"ok\n");
    }
    // A fourth, sent separately on the same socket, still answers.
    write_request(&mut stream, "GET", "/healthz", &[], true).unwrap();
    assert_eq!(read_responses(&mut stream, 1)[0].status, 200);

    assert!(
        global_counter(ct_obs::names::SERVE_KEEPALIVE_REUSES) >= reuses_before + 3,
        "requests 2-4 on one socket are reuses"
    );
}

#[test]
fn routed_4xx_keeps_the_connection_alive() {
    let scratch = Scratch::new("routed4xx");
    let server = serve_with(&scratch.0, |_| {});

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_request(&mut stream, "GET", "/florble", &[], true).unwrap();
    let miss = read_responses(&mut stream, 1).remove(0);
    assert_eq!(miss.status, 404);
    assert!(miss.keep_alive, "a routed miss must not cost the socket");
    // Same socket, next request: still served.
    write_request(&mut stream, "GET", "/healthz", &[], true).unwrap();
    let ok = read_responses(&mut stream, 1).remove(0);
    assert_eq!((ok.status, ok.keep_alive), (200, true));
}

#[test]
fn garbage_answers_400_then_closes_without_hurting_others() {
    let scratch = Scratch::new("garbage");
    let server = serve_with(&scratch.0, |_| {});
    let bad_before = global_counter(ct_obs::names::SERVE_BAD_REQUESTS);

    // A healthy kept-alive bystander, mid-session.
    let mut bystander = TcpStream::connect(server.addr()).unwrap();
    write_request(&mut bystander, "GET", "/healthz", &[], true).unwrap();
    assert_eq!(read_responses(&mut bystander, 1)[0].status, 200);

    let mut vandal = TcpStream::connect(server.addr()).unwrap();
    vandal.write_all(b"florble grumble\r\n\r\n").unwrap();
    let answer = read_response(&mut vandal).unwrap();
    assert_eq!(answer.status, 400);
    assert!(!answer.keep_alive, "framing is lost after garbage");
    let mut rest = Vec::new();
    vandal.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "the vandal's socket is closed");

    // The bystander's session survived the vandal.
    write_request(&mut bystander, "GET", "/healthz", &[], true).unwrap();
    assert_eq!(read_responses(&mut bystander, 1)[0].status, 200);
    assert!(global_counter(ct_obs::names::SERVE_BAD_REQUESTS) > bad_before);
}

#[test]
fn idle_connections_are_swept_and_counted() {
    let scratch = Scratch::new("idle");
    let server = serve_with(&scratch.0, |options| options.idle_ms = 50);
    let idle_before = global_counter(ct_obs::names::SERVE_IDLE_CLOSES);

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_request(&mut stream, "GET", "/healthz", &[], true).unwrap();
    assert_eq!(read_responses(&mut stream, 1)[0].status, 200);

    // Go quiet past the idle timeout (+ the worker's sweep tick).
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 64];
    let n = stream.read(&mut buf).unwrap();
    assert_eq!(n, 0, "the server closes an idle kept-alive socket");
    assert!(global_counter(ct_obs::names::SERVE_IDLE_CLOSES) > idle_before);
}

#[test]
fn max_requests_bound_closes_the_session_politely() {
    let scratch = Scratch::new("bound");
    let server = serve_with(&scratch.0, |options| options.max_requests = 3);

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut wire = Vec::new();
    for _ in 0..3 {
        wire.extend_from_slice(&encode_request("GET", "/healthz", &[], true));
    }
    stream.write_all(&wire).unwrap();
    let responses = read_responses(&mut stream, 3);
    assert!(responses[0].keep_alive);
    assert!(responses[1].keep_alive);
    assert!(
        !responses[2].keep_alive,
        "the final response announces the close"
    );
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "the socket closes after the bound");

    // The next session on a fresh dial is unaffected.
    let mut fresh = TcpStream::connect(server.addr()).unwrap();
    write_request(&mut fresh, "GET", "/healthz", &[], true).unwrap();
    assert_eq!(read_responses(&mut fresh, 1)[0].status, 200);
}
