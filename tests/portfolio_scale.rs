//! The region-generic pipeline at acceptance scale: a 2000-asset,
//! 8-region synthetic portfolio completes a sharded run + merge that
//! is bit-identical to a clean single-process build, and the
//! per-region spatial indexing keeps the mean range-query scan width
//! far below the portfolio's asset count (counter-asserted, not
//! eyeballed). Wind hazard throughout: it is the engine whose
//! footprint→asset mapping rides the `ct_geo::SpatialIndex`.

use compound_threats::prelude::*;
use ct_scada::RegionSpec;

/// The acceptance portfolio: ≥ 2000 assets across ≥ 8 regions.
const SPEC: &str = "synth:17:8:2000";
/// Per-region ensemble size — small, because the contract under test
/// is structural (sharding, merging, counters), not statistical.
const REALIZATIONS: usize = 6;

fn config() -> CaseStudyConfig {
    CaseStudyConfig::builder()
        .region(SPEC.parse().unwrap())
        .hazard(HazardSpec::Wind)
        .realizations(REALIZATIONS)
        .build()
        .unwrap()
}

/// Unique scratch directory for one test, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "ct-portfolio-scale-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&root).ok();
        Self(root)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn acceptance_portfolio_shards_merge_and_prune() {
    let spec: RegionSpec = SPEC.parse().unwrap();
    assert!(spec.region_count() >= 8);
    assert!(spec.total_assets() >= 2000);

    let scratch = Scratch::new("accept");
    let store = Store::open(&scratch.0).unwrap();
    let config = config();

    let candidates0 = ct_obs::counter(ct_obs::names::SPATIAL_CANDIDATES).get();
    let queries0 = ct_obs::counter(ct_obs::names::SPATIAL_QUERIES).get();

    // Two shards split the flattened region × realization sequence;
    // together they must cover it exactly once.
    let a = run_shard(&config, &store, ShardSpec::new(0, 2).unwrap()).unwrap();
    let b = run_shard(&config, &store, ShardSpec::new(1, 2).unwrap()).unwrap();
    let total = spec.region_count() * REALIZATIONS;
    assert_eq!(a.total + b.total, total);
    assert_eq!(a.computed + b.computed, total);

    // The merge reads everything back; nothing is recomputed.
    let merged = CaseStudy::merge_from_store(&config, &store).unwrap();
    assert_eq!(merged.region_count(), spec.region_count());

    // Bit-identity against a storeless clean build, every region.
    let clean = CaseStudy::build(&config).unwrap();
    for r in 0..spec.region_count() {
        assert_eq!(
            clean.region(r).realizations(),
            merged.region(r).realizations(),
            "region {r} diverged between sharded merge and clean build"
        );
    }

    // The counter-asserted spatial claim: evaluation indexed each
    // region's own assets, so the mean scan width per range query is
    // bounded by the largest region (~ total/8 + remainder), far
    // below the portfolio's asset count. A portfolio-wide brute-force
    // scan would pin the mean at `total_assets` exactly.
    let candidates = ct_obs::counter(ct_obs::names::SPATIAL_CANDIDATES).get() - candidates0;
    let queries = ct_obs::counter(ct_obs::names::SPATIAL_QUERIES).get() - queries0;
    assert!(queries > 0, "wind evaluation must issue spatial queries");
    let mean_scan = candidates as f64 / queries as f64;
    let per_region_cap = (spec.total_assets() / spec.region_count() + 1) as f64;
    assert!(
        mean_scan <= per_region_cap,
        "mean scan width {mean_scan:.1} exceeds the per-region cap {per_region_cap}"
    );
    assert!(
        mean_scan * 4.0 < spec.total_assets() as f64,
        "mean scan width {mean_scan:.1} is not \u{226a} the {} portfolio assets",
        spec.total_assets()
    );

    // Every region's outcome profile is reachable from the merged
    // study and sums to one.
    let summary = merged.portfolio_summary().unwrap();
    assert_eq!(
        summary.lines().count(),
        1 + spec.region_count() * Architecture::ALL.len()
    );
}
