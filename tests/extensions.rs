//! Integration tests for the framework extensions: grid impact,
//! expected downtime, category sensitivity, placement search and
//! probabilistic attacker power — exercised together on one shared
//! ensemble.

use compound_threats::attacker_power::{expected_profile, AttackerPower};
use compound_threats::availability::{downtime_report, DowntimeModel};
use compound_threats::grid_impact::{
    blind_grid_stats, expected_served_with_scada, grid_impact, GridImpactConfig,
};
use compound_threats::placement::rank_backup_sites;
use compound_threats::sensitivity::category_sweep;
use compound_threats::{CaseStudy, CaseStudyConfig};
use ct_hydro::Category;
use ct_scada::{oahu, Architecture};
use ct_threat::ThreatScenario;
use std::sync::OnceLock;

fn study() -> &'static CaseStudy {
    static STUDY: OnceLock<CaseStudy> = OnceLock::new();
    STUDY.get_or_init(|| {
        CaseStudy::build(
            &CaseStudyConfig::builder()
                .realizations(300)
                .build()
                .unwrap(),
        )
        .expect("study builds")
    })
}

#[test]
fn grid_impact_supervised_dominates_blind() {
    let summary = grid_impact(study(), &GridImpactConfig::default()).unwrap();
    assert_eq!(summary.served_blind.len(), 300);
    assert!(summary.mean_served_supervised() >= summary.mean_served_blind());
    // The hurricane must matter to the grid at all.
    assert!(summary.p_loss_below(0.999) > 0.05);
}

#[test]
fn scada_resilience_translates_into_load_served() {
    let config = GridImpactConfig::default();
    let summary = grid_impact(study(), &config).unwrap();
    // Under the full compound threat, the intrusion-tolerant
    // network-attack-resilient architecture keeps the operators in the
    // loop in ~90 % of realizations; the others never do.
    let scenario = ThreatScenario::HurricaneIntrusionIsolation;
    let served_666 = expected_served_with_scada(
        study(),
        &summary,
        Architecture::C6P6P6,
        scenario,
        oahu::SiteChoice::Waiau,
    )
    .unwrap();
    for arch in [Architecture::C2, Architecture::C2_2, Architecture::C6] {
        let served =
            expected_served_with_scada(study(), &summary, arch, scenario, oahu::SiteChoice::Waiau)
                .unwrap();
        assert!(
            served_666 >= served,
            "{arch}: {served} beats 6+6+6's {served_666}"
        );
    }
}

#[test]
fn blind_grid_correlation_lift_is_positive() {
    let config = GridImpactConfig::default();
    let summary = grid_impact(study(), &config).unwrap();
    let stats = blind_grid_stats(
        study(),
        &summary,
        Architecture::C6,
        ThreatScenario::Hurricane,
        oahu::SiteChoice::Waiau,
        &config,
    )
    .unwrap();
    assert!(stats.p_joint > 0.0, "{stats:?}");
    assert!(stats.correlation_lift > 1.0, "{stats:?}");
}

#[test]
fn downtime_gray_dominates_for_industry_configs() {
    let model = DowntimeModel::default();
    let report = downtime_report(
        study(),
        ThreatScenario::HurricaneIntrusion,
        oahu::SiteChoice::Waiau,
        &model,
    )
    .unwrap();
    // "2" spends ~90 % of events in gray at 120 h.
    let h2 = report.hours(Architecture::C2).unwrap();
    assert!(h2 > 100.0, "industry config downtime {h2}");
    let h666 = report.hours(Architecture::C6P6P6).unwrap();
    assert!(h666 < 15.0, "6+6+6 downtime {h666}");
}

#[test]
fn category_sweep_preserves_architecture_ranking() {
    let sweep = category_sweep(
        &CaseStudyConfig::builder()
            .realizations(200)
            .build()
            .unwrap(),
        &[Category::Cat1, Category::Cat3],
        ThreatScenario::HurricaneIntrusionIsolation,
        oahu::SiteChoice::Waiau,
    )
    .unwrap();
    for point in &sweep {
        let green = |a| point.profile(a).unwrap().green();
        assert!(green(Architecture::C6P6P6) >= green(Architecture::C6_6));
        assert!(green(Architecture::C6_6) >= green(Architecture::C2));
    }
}

#[test]
fn placement_search_covers_all_candidates() {
    let ranking =
        rank_backup_sites(study(), Architecture::C6_6, ThreatScenario::Hurricane).unwrap();
    // All control-capable assets except the primary itself.
    let expected = study()
        .topology()
        .control_candidates()
        .iter()
        .filter(|a| a.id != oahu::HONOLULU_CC)
        .count();
    assert_eq!(ranking.len(), expected);
    // Kahe must beat Waiau for the hurricane scenario.
    let pos = |id: &str| {
        ranking
            .iter()
            .position(|r| r.backup_asset_id == id)
            .unwrap()
    };
    assert!(pos(oahu::KAHE) < pos(oahu::WAIAU));
}

#[test]
fn attacker_power_interpolates_between_scenarios() {
    let half = AttackerPower::new(0.5, 0.5).unwrap();
    let e = expected_profile(study(), Architecture::C6_6, oahu::SiteChoice::Waiau, half).unwrap();
    assert!(e.is_normalized());
    // At half power the green probability sits strictly between the
    // worst-case and no-attack values.
    let none = study()
        .profile(
            Architecture::C6_6,
            ThreatScenario::Hurricane,
            oahu::SiteChoice::Waiau,
        )
        .unwrap()
        .green();
    let worst = study()
        .profile(
            Architecture::C6_6,
            ThreatScenario::HurricaneIntrusionIsolation,
            oahu::SiteChoice::Waiau,
        )
        .unwrap()
        .green();
    assert!(e.green < none);
    assert!(e.green > worst);
}
