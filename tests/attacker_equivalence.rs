//! The paper claims its three-rule greedy attacker "guarantees the
//! worst-case damage" (Sec. V-B). The unit-level property test checks
//! random states; here we check every post-disaster state that
//! actually occurs in the full case-study ensemble, for every
//! architecture, siting, and scenario.

use compound_threats::{CaseStudy, CaseStudyConfig};
use ct_scada::{oahu, Architecture};
use ct_threat::{
    classify, post_disaster_states, Attacker, ExhaustiveAttacker, ThreatScenario, WorstCaseAttacker,
};
use std::sync::OnceLock;

fn study() -> &'static CaseStudy {
    static STUDY: OnceLock<CaseStudy> = OnceLock::new();
    STUDY.get_or_init(|| CaseStudy::build(&CaseStudyConfig::default()).expect("case study builds"))
}

#[test]
fn greedy_attacker_achieves_exhaustive_damage_on_the_real_ensemble() {
    let set = study().realizations();
    for arch in Architecture::ALL {
        for choice in [oahu::SiteChoice::Waiau, oahu::SiteChoice::Kahe] {
            let plan = oahu::site_plan(arch, choice).unwrap();
            let posts = post_disaster_states(&plan, set).unwrap();
            // The distinct post-disaster states are few; dedupe to
            // keep the exhaustive search cheap.
            let mut distinct = posts.clone();
            distinct.sort_by_key(|p| p.flooded().to_vec());
            distinct.dedup();
            for scenario in ThreatScenario::ALL {
                let budget = scenario.budget();
                for post in &distinct {
                    let greedy = classify(&WorstCaseAttacker.attack(arch, post, budget));
                    let exhaustive = classify(&ExhaustiveAttacker.attack(arch, post, budget));
                    assert_eq!(
                        greedy, exhaustive,
                        "{arch:?}/{choice:?}/{scenario}: post {post:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn attacker_rule_priorities_visible_in_chosen_targets() {
    // With one isolation and everything up, the greedy attacker
    // always isolates the *primary* control center (rule 2 priority).
    use ct_threat::{PostDisasterState, SiteStatus};
    for arch in [Architecture::C2_2, Architecture::C6_6, Architecture::C6P6P6] {
        let post = PostDisasterState::all_up(arch);
        let state =
            WorstCaseAttacker.attack(arch, &post, ThreatScenario::HurricaneIsolation.budget());
        assert_eq!(
            state.sites[0].status,
            SiteStatus::Isolated,
            "{arch:?} should have its primary isolated"
        );
        for s in &state.sites[1..] {
            assert_eq!(s.status, SiteStatus::Up, "{arch:?}");
        }
    }
}

#[test]
fn rule_one_preempts_isolation() {
    // If safety can be compromised the attacker does that instead of
    // isolating (rule 1): with budget {1,1} against "2-2" the final
    // state has an intrusion and no isolation.
    use ct_threat::PostDisasterState;
    let post = PostDisasterState::all_up(Architecture::C2_2);
    let state = WorstCaseAttacker.attack(
        Architecture::C2_2,
        &post,
        ThreatScenario::HurricaneIntrusionIsolation.budget(),
    );
    assert_eq!(state.effective_intrusions(), 1);
    assert!(state
        .sites
        .iter()
        .all(|s| s.status == ct_threat::SiteStatus::Up));
}
