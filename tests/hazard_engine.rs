//! End-to-end contracts of the pluggable hazard engine.
//!
//! The load-bearing one: routing the original surge model through the
//! [`HazardModel`] trait must be *bit-identical* to the pre-refactor
//! hard-wired pipeline (retained as
//! [`CaseStudy::build_reference_surge`]) — every realization f64,
//! every figure byte, every Table I probability. The seam is then
//! proven by running the wind-fragility and compound hazards through
//! the same pipeline end-to-end, and by showing the artifact store
//! keeps the three engines' records apart.

use compound_threats::artifact::ensemble_base_key;
use compound_threats::figures::{reproduce_all, Figure};
use compound_threats::prelude::*;
use compound_threats::report::figure_csv;
use ct_geo::terrain::synthesize_oahu;

/// Large enough for the acceptance criterion (n ≥ 200) while keeping
/// the test suite's wall-clock sane.
const EQUIVALENCE_N: usize = 200;

fn config(hazard: HazardSpec, realizations: usize) -> CaseStudyConfig {
    CaseStudyConfig::builder()
        .hazard(hazard)
        .realizations(realizations)
        .build()
        .unwrap()
}

/// Unique scratch directory for one test, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "ct-hazard-engine-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&root).ok();
        Self(root)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn figures_csv(study: &CaseStudy) -> String {
    reproduce_all(study)
        .unwrap()
        .iter()
        .map(figure_csv)
        .collect()
}

/// Every (figure, architecture) profile — the Table I probabilities
/// the paper reports.
fn all_profiles(study: &CaseStudy) -> Vec<(Figure, Architecture, OutcomeProfile)> {
    Figure::ALL
        .iter()
        .flat_map(|&fig| {
            Architecture::ALL.iter().map(move |&arch| {
                let p = study
                    .profile(arch, fig.scenario(), fig.site_choice())
                    .unwrap();
                (fig, arch, p)
            })
        })
        .collect()
}

/// The tentpole acceptance criterion: surge through the trait is
/// bit-identical to the pre-refactor hard-wired pipeline at n ≥ 200 —
/// in the raw realizations, in every profile, and in the rendered
/// figure CSV, with and without a store in the path.
#[test]
fn surge_via_trait_is_bit_identical_to_the_reference_pipeline() {
    let config = config(HazardSpec::Surge, EQUIVALENCE_N);
    let reference = CaseStudy::build_reference_surge(&config).unwrap();
    let via_trait = CaseStudy::build(&config).unwrap();

    // RealizationSet's PartialEq compares every f64, so equality here
    // is bit equality of the whole ensemble.
    assert_eq!(reference.realizations(), via_trait.realizations());
    assert_eq!(all_profiles(&reference), all_profiles(&via_trait));
    let golden = figures_csv(&reference);
    assert_eq!(golden, figures_csv(&via_trait));

    // The store-backed path reproduces the same bytes, cold and warm.
    let scratch = Scratch::new("equivalence");
    let store = Store::open(&scratch.0).unwrap();
    let cold = CaseStudy::build_with_store(&config, Some(&store)).unwrap();
    let warm = CaseStudy::build_with_store(&config, Some(&store)).unwrap();
    assert_eq!(reference.realizations(), cold.realizations());
    assert_eq!(reference.realizations(), warm.realizations());
    assert_eq!(golden, figures_csv(&cold));
    assert_eq!(golden, figures_csv(&warm));

    // The reference path also honors a non-default threshold the same
    // way (`with_flood_threshold` sensitivity stays aligned).
    let loose = config.clone();
    let reference_t = CaseStudy::build_reference_surge(&loose)
        .unwrap()
        .with_flood_threshold(1.0)
        .unwrap();
    let trait_t = via_trait.with_flood_threshold(1.0).unwrap();
    assert_eq!(figures_csv(&reference_t), figures_csv(&trait_t));
}

/// The seam proof: wind and compound run the full pipeline end-to-end
/// (build → profiles → figures) and produce hazard-consistent results.
#[test]
fn wind_and_compound_run_end_to_end() {
    let surge = CaseStudy::build(&config(HazardSpec::Surge, 60)).unwrap();
    let wind = CaseStudy::build(&config(HazardSpec::Wind, 60)).unwrap();
    let compound = CaseStudy::build(&config(HazardSpec::Compound, 60)).unwrap();

    for (study, spec) in [(&wind, HazardSpec::Wind), (&compound, HazardSpec::Compound)] {
        assert_eq!(study.hazard(), spec);
        assert_eq!(study.realizations().len(), 60);
        let csv = figures_csv(study);
        assert!(csv.contains("figure,config"), "renders figures: {spec}");
        // Classification runs: every profile's fractions sum to 1.
        for (fig, arch, p) in all_profiles(study) {
            let total = p.green() + p.orange() + p.red() + p.gray();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{spec}/{fig}/{arch}: profile sums to {total}"
            );
        }
        // Non-surge figures are visibly labelled.
        let data = reproduce_all(study).unwrap();
        let table = compound_threats::report::figure_table(&data[0]);
        assert!(table.contains(&format!("[hazard: {spec}]")));
    }

    // Compound severity is the per-asset max of its parts, so every
    // asset the surge or wind hazard fails, the compound fails too
    // (union semantics), and its severities dominate both.
    let threshold = surge.realizations().threshold();
    for i in 0..60 {
        let s = &surge.realizations().realizations()[i];
        let w = &wind.realizations().realizations()[i];
        let c = &compound.realizations().realizations()[i];
        for j in 0..s.inundation_m.len() {
            assert_eq!(
                c.inundation_m[j],
                s.inundation_m[j].max(w.inundation_m[j]),
                "realization {i}, asset {j}: compound must be max(surge, wind)"
            );
            assert_eq!(
                threshold.is_flooded(c.inundation_m[j]),
                threshold.is_flooded(s.inundation_m[j]) || threshold.is_flooded(w.inundation_m[j]),
                "realization {i}, asset {j}: compound failure must be the union"
            );
        }
    }

    // Wind actually bites: some asset fails under wind in some
    // realization (otherwise the seam proof proves nothing).
    let wind_failures: usize = (0..60)
        .map(|i| {
            wind.realizations().realizations()[i]
                .inundation_m
                .iter()
                .filter(|&&s| threshold.is_flooded(s))
                .count()
        })
        .sum();
    assert!(wind_failures > 0, "wind hazard never failed any asset");
}

/// Hazard-distinct store keys, observed end-to-end: running surge and
/// wind into the *same* store must not share a single record — each
/// engine computes its full shard fresh, and each engine's re-run is a
/// full warm hit. (Asserted via `ShardReport` rather than global obs
/// counters, which other tests in this binary race.)
#[test]
fn store_keeps_hazard_records_apart_and_warm_hits_within_a_hazard() {
    let scratch = Scratch::new("isolation");
    let store = Store::open(&scratch.0).unwrap();
    let shard = ShardSpec::new(0, 1).unwrap();

    let surge = config(HazardSpec::Surge, 18);
    let wind = config(HazardSpec::Wind, 18);
    let compound = config(HazardSpec::Compound, 18);

    for cfg in [&surge, &wind, &compound] {
        let cold = run_shard(cfg, &store, shard).unwrap();
        assert_eq!(
            cold.computed, 18,
            "{}: must not reuse another hazard's records",
            cfg.hazard
        );
        assert_eq!(cold.reused, 0);
    }
    for cfg in [&surge, &wind, &compound] {
        let warm = run_shard(cfg, &store, shard).unwrap();
        assert_eq!(warm.reused, 18, "{}: re-run must be all hits", cfg.hazard);
        assert_eq!(warm.computed, 0);
    }

    // The same distinctness at the key level: every pair of hazards
    // disagrees on the base address for identical config/terrain/POIs.
    let dem = synthesize_oahu(&surge.terrain);
    let pois = ct_scada::oahu::case_study_pois(&dem).unwrap();
    let key = |cfg: &CaseStudyConfig| {
        let hazard = cfg.hazard.build_model(&dem, cfg.calibration);
        ensemble_base_key(cfg, &dem, &pois, hazard.as_ref())
    };
    let keys = [key(&surge), key(&wind), key(&compound)];
    assert_ne!(keys[0], keys[1]);
    assert_ne!(keys[0], keys[2]);
    assert_ne!(keys[1], keys[2]);
}

/// The batched SoA wind kernel (`DamageModel::peak_winds_at`, used by
/// `WindFragilityHazard::evaluate` and the line-fragility sampler) is
/// bit-identical to the per-POI scalar scan over the pipeline's real
/// POIs and sampled ensemble storms, and a compound evaluation built
/// on batched parts stays the exact per-asset max of those parts.
#[test]
fn batched_hazard_evaluation_is_bit_identical_to_the_per_poi_path() {
    use ct_grid::{fragility_draw, DamageModel};
    use ct_hazard::{wind::MAX_SEVERITY_M, CompoundHazard, HazardModel, WindFragilityHazard};
    use ct_hydro::{EnsembleConfig, FloodThreshold, TrackEnsemble};

    let cfg = config(HazardSpec::Wind, 6);
    let dem = synthesize_oahu(&cfg.terrain);
    let pois = ct_scada::oahu::case_study_pois(&dem).unwrap();
    let storms = TrackEnsemble::new(EnsembleConfig {
        realizations: 6,
        ..EnsembleConfig::default()
    })
    .unwrap()
    .generate();

    let wind = WindFragilityHazard::default();
    let damage = *wind.damage();
    let switch_height_m = FloodThreshold::default().depth_m();
    for (i, storm) in storms.iter().enumerate() {
        let batched = wind.evaluate(i, storm, &pois).unwrap();
        assert_eq!(batched.inundation_m.len(), pois.len());
        for (j, poi) in pois.iter().enumerate() {
            // Per-POI reference path: the scalar gust scan plus the
            // documented severity mapping, asset by asset.
            let gust = wind.peak_gust_ms(storm, poi);
            let p = damage.line_failure_probability(gust);
            let u = fragility_draw(damage.seed, i as u64, j as u64);
            let severity = (switch_height_m * p / u.max(f64::MIN_POSITIVE)).min(MAX_SEVERITY_M);
            assert_eq!(
                severity.to_bits(),
                batched.inundation_m[j].to_bits(),
                "storm {i}, asset {j}: batched severity diverged from the scalar path"
            );
        }
    }

    // Compound over batched parts keeps exact union (max) semantics.
    let reseeded = WindFragilityHazard::new(DamageModel {
        seed: damage.seed + 1,
        ..damage
    });
    let compound = CompoundHazard::union(vec![Box::new(wind), Box::new(reseeded)]).unwrap();
    for (i, storm) in storms.iter().enumerate() {
        let a = wind.evaluate(i, storm, &pois).unwrap();
        let b = reseeded.evaluate(i, storm, &pois).unwrap();
        let c = compound.evaluate(i, storm, &pois).unwrap();
        for j in 0..pois.len() {
            assert_eq!(
                c.inundation_m[j].to_bits(),
                a.inundation_m[j].max(b.inundation_m[j]).to_bits(),
                "storm {i}, asset {j}: compound must be the bitwise max of its parts"
            );
        }
    }
}

/// Sharded wind runs merge to the same answer as an unsharded wind
/// build — the `ct merge` path is hazard-generic, not surge-only.
#[test]
fn sharded_wind_run_merges_to_the_clean_answer() {
    let scratch = Scratch::new("wind-shards");
    let store = Store::open(&scratch.0).unwrap();
    let cfg = config(HazardSpec::Wind, 21);
    let a = run_shard(&cfg, &store, ShardSpec::new(0, 2).unwrap()).unwrap();
    let b = run_shard(&cfg, &store, ShardSpec::new(1, 2).unwrap()).unwrap();
    assert_eq!(a.computed + b.computed, 21);
    let merged = CaseStudy::merge_from_store(&cfg, &store).unwrap();
    let clean = CaseStudy::build(&cfg).unwrap();
    assert_eq!(merged.realizations(), clean.realizations());
    assert_eq!(figures_csv(&merged), figures_csv(&clean));
}
