//! End-to-end contracts of the serving tier: a shard run and merge
//! through `http://` are bit-identical to the local store (with exact
//! `store.remote.*` counters), `/probe` answers state probabilities
//! from hosted artifacts and caches the built study, malformed
//! requests get 4xx without killing a worker, and the serve lock
//! keeps destructive `fsck` off a store while it is served.

use compound_threats::figures::reproduce_all;
use compound_threats::prelude::*;
use compound_threats::report::figure_csv;
use compound_threats::serve::{ServeOptions, Server};
use ct_store::remote::{read_response, write_request, MAX_BODY_BYTES};
use ct_store::FsckOptions;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;

const REALIZATIONS: usize = 24;

fn config() -> CaseStudyConfig {
    CaseStudyConfig::builder()
        .realizations(REALIZATIONS)
        .build()
        .unwrap()
}

/// Unique scratch directory for one test, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "ct-remote-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&root).ok();
        Self(root)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A server on an OS-assigned loopback port over `root`.
fn serve(root: &std::path::Path) -> Server {
    Server::bind(
        root,
        &ServeOptions {
            addr: "127.0.0.1:0".into(),
            ..ServeOptions::default()
        },
    )
    .unwrap()
}

fn figures_csv(study: &CaseStudy) -> String {
    reproduce_all(study)
        .unwrap()
        .iter()
        .map(figure_csv)
        .collect()
}

/// One raw one-shot request against the server: `(status, body)`.
fn raw(server: &Server, method: &str, target: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_request(&mut stream, method, target, body, false).unwrap();
    let response = read_response(&mut stream).unwrap();
    assert!(
        !response.keep_alive,
        "a Connection: close request must be answered in close mode"
    );
    (response.status, response.body)
}

#[test]
fn serve_backed_shard_and_merge_match_local_bit_for_bit() {
    let scratch = Scratch::new("e2e");
    let config = config();
    let server = serve(&scratch.0);
    let shard = ShardSpec::new(0, 2).unwrap();
    let owned = (REALIZATIONS / 2) as u64;

    // Cold shard over the wire: every owned realization is a remote
    // miss, computed, and written back — exactly once each.
    let cold_reg = Arc::new(ct_obs::Registry::new());
    let cold = RemoteStore::connect_with_registry(server.addr().to_string(), Arc::clone(&cold_reg));
    let report = run_shard(&config, &cold, shard).unwrap();
    assert_eq!(report.computed, report.total);
    assert_eq!(report.total, owned as usize);
    let snap = cold_reg.snapshot();
    let count = |name| snap.counter(name).unwrap_or(0);
    assert_eq!(count(ct_obs::names::STORE_REMOTE_GETS), owned);
    assert_eq!(count(ct_obs::names::STORE_REMOTE_MISSES), owned);
    assert_eq!(count(ct_obs::names::STORE_REMOTE_PUTS), owned);
    assert_eq!(count(ct_obs::names::STORE_REMOTE_HITS), 0);
    assert_eq!(count(ct_obs::names::STORE_REMOTE_ERRORS), 0);
    assert_eq!(count(ct_obs::names::STORE_RETRIES), 0);

    // Warm rerun of the same shard: all hits, nothing recomputed,
    // nothing written — and the connection pool reuses kept-alive
    // sockets instead of dialing per operation.
    let keepalive_before = ct_obs::snapshot()
        .counter(ct_obs::names::SERVE_KEEPALIVE_REUSES)
        .unwrap_or(0);
    let warm_reg = Arc::new(ct_obs::Registry::new());
    let warm = RemoteStore::connect_with_registry(server.addr().to_string(), Arc::clone(&warm_reg));
    let report = run_shard(&config, &warm, shard).unwrap();
    assert_eq!(report.reused, report.total);
    let snap = warm_reg.snapshot();
    let count = |name| snap.counter(name).unwrap_or(0);
    assert_eq!(count(ct_obs::names::STORE_REMOTE_GETS), owned);
    assert_eq!(count(ct_obs::names::STORE_REMOTE_HITS), owned);
    assert_eq!(count(ct_obs::names::STORE_REMOTE_MISSES), 0);
    assert_eq!(count(ct_obs::names::STORE_REMOTE_PUTS), 0);
    let pool_hits = count(ct_obs::names::STORE_REMOTE_POOL_HITS);
    let pool_dials = count(ct_obs::names::STORE_REMOTE_POOL_DIALS);
    assert!(pool_hits > 0, "warm pass must reuse pooled connections");
    assert!(
        pool_hits + pool_dials >= owned,
        "every operation checks a connection out: {pool_hits} hits + {pool_dials} dials < {owned}"
    );
    assert!(
        pool_dials < owned,
        "keep-alive must beat one-dial-per-op: {pool_dials} dials for {owned} ops"
    );
    let keepalive_after = ct_obs::snapshot()
        .counter(ct_obs::names::SERVE_KEEPALIVE_REUSES)
        .unwrap_or(0);
    assert!(
        keepalive_after > keepalive_before,
        "the server must count kept-alive request reuses"
    );

    // Other shard, then a merge through the wire: bit-identical to a
    // storeless build, which the local-store tests pin in turn — so
    // local and remote backends agree byte for byte.
    let remote = RemoteStore::connect(server.addr().to_string());
    run_shard(&config, &remote, ShardSpec::new(1, 2).unwrap()).unwrap();
    let merged = CaseStudy::merge_from_store(&config, &remote).unwrap();
    let clean = CaseStudy::build(&config).unwrap();
    assert_eq!(merged.realizations(), clean.realizations());
    assert_eq!(figures_csv(&merged), figures_csv(&clean));
}

#[test]
fn probe_answers_from_hosted_artifacts_and_caches_the_study() {
    let scratch = Scratch::new("probe");
    let server = serve(&scratch.0);
    let target = "/probe?scenario=compound&site=waiau&realizations=12";

    let builds_before = ct_obs::snapshot()
        .counter(ct_obs::names::SERVE_PROBE_BUILDS)
        .unwrap_or(0);
    let (status, body) = raw(&server, "GET", target, &[]);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));

    // The response is exactly the profile the framework computes for
    // the same configuration.
    let config = CaseStudyConfig::builder().realizations(12).build().unwrap();
    let study = CaseStudy::build(&config).unwrap();
    let mut want = String::from("architecture,green,orange,red,gray\n");
    for architecture in Architecture::ALL {
        let p = study
            .profile(
                architecture,
                ThreatScenario::HurricaneIntrusionIsolation,
                SiteChoice::Waiau,
            )
            .unwrap();
        want.push_str(&format!(
            "{},{},{},{},{}\n",
            architecture.label(),
            p.green(),
            p.orange(),
            p.red(),
            p.gray()
        ));
    }
    assert_eq!(String::from_utf8(body).unwrap(), want);

    // A second identical probe is answered from the cached study.
    let (status, again) = raw(&server, "GET", target, &[]);
    assert_eq!(status, 200);
    assert_eq!(String::from_utf8(again).unwrap(), want);
    let builds_after = ct_obs::snapshot()
        .counter(ct_obs::names::SERVE_PROBE_BUILDS)
        .unwrap_or(0);
    assert_eq!(
        builds_after - builds_before,
        1,
        "one study build serves both probes"
    );

    // Parameter validation is a 400 with an actionable message.
    let (status, body) = raw(&server, "GET", "/probe?site=waiau", &[]);
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("scenario"));
    let (status, _) = raw(&server, "GET", "/probe?scenario=florble&site=waiau", &[]);
    assert_eq!(status, 400);
}

#[test]
fn malformed_requests_get_4xx_and_never_kill_a_worker() {
    let scratch = Scratch::new("proto");
    let server = serve(&scratch.0);

    // Raw garbage instead of HTTP.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"florble grumble\r\n\r\n").unwrap();
    let response = read_response(&mut stream).unwrap();
    assert_eq!(response.status, 400);
    assert!(!response.keep_alive, "framing is lost after garbage");

    // A truncated request (client hangs up mid-head).
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"GET /healthz HT").unwrap();
    drop(stream);

    // An oversized Content-Length is refused without reading the body.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(
            format!(
                "PUT /objects/{} HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                "00".repeat(16),
                MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        )
        .unwrap();
    let response = read_response(&mut stream).unwrap();
    assert_eq!(response.status, 413);

    // Unknown paths and malformed object keys.
    let (status, _) = raw(&server, "GET", "/florble", &[]);
    assert_eq!(status, 404);
    let (status, _) = raw(&server, "GET", "/objects/not-hex", &[]);
    assert_eq!(status, 400);
    let (status, _) = raw(
        &server,
        "POST",
        &format!("/objects/{}", "00".repeat(16)),
        &[],
    );
    assert_eq!(status, 405);
    // A frame that fails validation is rejected before it is stored.
    let (status, _) = raw(
        &server,
        "PUT",
        &format!("/objects/{}", "00".repeat(16)),
        b"not a CTSTORE1 frame",
    );
    assert_eq!(status, 400);

    // After all of that abuse, every worker still answers.
    for _ in 0..8 {
        let (status, body) = raw(&server, "GET", "/healthz", &[]);
        assert_eq!(status, 200);
        assert_eq!(body, b"ok\n");
    }
    let (status, body) = raw(&server, "GET", "/metricsz", &[]);
    assert_eq!(status, 200);
    let metrics = String::from_utf8(body).unwrap();
    assert!(metrics.contains(ct_obs::names::SERVE_REQUESTS));
}

#[test]
fn serve_lock_blocks_destructive_fsck_and_second_servers() {
    let scratch = Scratch::new("lock");
    let config = CaseStudyConfig::builder().realizations(4).build().unwrap();
    {
        let store = Store::open(&scratch.0).unwrap();
        CaseStudy::build_with_store(&config, Some(&store)).unwrap();
    }

    let server = serve(&scratch.0);
    // A second server on the same root is refused loudly.
    let err = Server::bind(&scratch.0, &ServeOptions::default()).unwrap_err();
    assert!(
        err.to_string().contains("already being served"),
        "got: {err}"
    );

    let store = Store::open(&scratch.0).unwrap();
    // Read-only fsck is always safe.
    assert!(store.fsck(&FsckOptions::default()).unwrap().clean());
    // Destructive fsck is refused while the store is served.
    let destructive = FsckOptions {
        repair: true,
        tmp_max_age: std::time::Duration::ZERO,
        prune_max_age: None,
    };
    let err = store.fsck(&destructive).unwrap_err();
    assert!(err.to_string().contains("being served"), "got: {err}");

    // Stopping the server releases the lock; the same fsck now runs.
    drop(server);
    assert!(store.fsck(&destructive).is_ok());
    let reopened = serve(&scratch.0);
    drop(reopened);
}
