//! Full-scale reproduction tests for every evaluation figure in the
//! paper (Figs. 6-11), at the paper's 1000-realization ensemble size.
//!
//! We do not pin the authors' exact 90.5 % / 9.5 % split — that is a
//! property of their proprietary ADCIRC run — but every *shape* the
//! paper reports must hold, and the headline probability must land
//! within a few points of theirs.

use compound_threats::figures::{reproduce, Figure};
use compound_threats::{CaseStudy, CaseStudyConfig, OutcomeProfile};
use ct_scada::Architecture::{C2, C2_2, C6, C6P6P6, C6_6};
use std::sync::OnceLock;

fn study() -> &'static CaseStudy {
    static STUDY: OnceLock<CaseStudy> = OnceLock::new();
    STUDY.get_or_init(|| CaseStudy::build(&CaseStudyConfig::default()).expect("case study builds"))
}

fn profile(figure: Figure, arch: ct_scada::Architecture) -> OutcomeProfile {
    *reproduce(study(), figure)
        .expect("figure reproduces")
        .profile(arch)
        .expect("architecture present")
}

/// The measured Honolulu flood probability, shared by most figures.
fn p_flood() -> f64 {
    study()
        .flood_probability(ct_scada::oahu::HONOLULU_CC)
        .unwrap()
}

const TOL: f64 = 1e-9;

#[test]
fn fig6_all_architectures_identical() {
    // "Surprisingly... none of the other architectures is able to
    // improve on this situation."
    let base = profile(Figure::Fig6, C2);
    for arch in [C2_2, C6, C6_6, C6P6P6] {
        let p = profile(Figure::Fig6, arch);
        assert!(p.approx_eq(&base, TOL), "{arch:?}: {p} vs {base}");
    }
    assert!((base.green() - (1.0 - p_flood())).abs() < TOL);
    assert!((base.red() - p_flood()).abs() < TOL);
    assert_eq!(base.orange(), 0.0);
    assert_eq!(base.gray(), 0.0);
}

#[test]
fn fig7_intrusion_grays_industry_spares_intrusion_tolerant() {
    // Industry configs: gray wherever servers survive, red otherwise.
    for arch in [C2, C2_2] {
        let p = profile(Figure::Fig7, arch);
        assert_eq!(p.green(), 0.0, "{arch:?} {p}");
        assert!((p.gray() - (1.0 - p_flood())).abs() < TOL, "{arch:?} {p}");
        assert!((p.red() - p_flood()).abs() < TOL, "{arch:?} {p}");
    }
    // Intrusion-tolerant configs keep their hurricane-only profile.
    let hurricane = profile(Figure::Fig6, C6);
    for arch in [C6, C6_6, C6P6P6] {
        let p = profile(Figure::Fig7, arch);
        assert!(p.approx_eq(&hurricane, TOL), "{arch:?} {p}");
    }
}

#[test]
fn fig8_isolation_kills_single_site_degrades_cold_backup() {
    // Single-control-center architectures: 100 % red.
    for arch in [C2, C6] {
        let p = profile(Figure::Fig8, arch);
        assert!((p.red() - 1.0).abs() < TOL, "{arch:?} {p}");
    }
    // Primary/cold-backup: orange where both sites survived.
    for arch in [C2_2, C6_6] {
        let p = profile(Figure::Fig8, arch);
        assert!((p.orange() - (1.0 - p_flood())).abs() < TOL, "{arch:?} {p}");
        assert!((p.red() - p_flood()).abs() < TOL, "{arch:?} {p}");
        assert_eq!(p.green(), 0.0, "{arch:?} {p}");
    }
    // Only 6+6+6 shows no degradation vs the hurricane alone.
    let p = profile(Figure::Fig8, C6P6P6);
    assert!(p.approx_eq(&profile(Figure::Fig6, C6P6P6), TOL), "{p}");
}

#[test]
fn fig9_full_compound_threat_ordering() {
    // "2"/"2-2": gray unless the hurricane already killed them.
    for arch in [C2, C2_2] {
        let p = profile(Figure::Fig9, arch);
        assert!((p.gray() - (1.0 - p_flood())).abs() < TOL, "{arch:?} {p}");
        assert!((p.red() - p_flood()).abs() < TOL, "{arch:?} {p}");
    }
    // "6": intrusion-tolerant but single-site -> always red.
    let p6 = profile(Figure::Fig9, C6);
    assert!((p6.red() - 1.0).abs() < TOL, "{p6}");
    // "6-6" is the minimum survivable configuration: orange.
    let p66 = profile(Figure::Fig9, C6_6);
    assert!((p66.orange() - (1.0 - p_flood())).abs() < TOL, "{p66}");
    // "6+6+6" keeps the hurricane-only profile but cannot beat it.
    let p666 = profile(Figure::Fig9, C6P6P6);
    assert!(
        p666.approx_eq(&profile(Figure::Fig6, C6P6P6), TOL),
        "{p666}"
    );
    assert!(
        p666.green() < 1.0,
        "no existing architecture is fully green under the compound threat"
    );
}

#[test]
fn fig10_kahe_backup_eliminates_red_for_backup_configs() {
    // Single-site configs unchanged by the siting choice.
    for arch in [C2, C6] {
        let p = profile(Figure::Fig10, arch);
        assert!(
            p.approx_eq(&profile(Figure::Fig6, arch), TOL),
            "{arch:?} {p}"
        );
    }
    // Cold-backup configs: every red realization becomes orange.
    for arch in [C2_2, C6_6] {
        let p = profile(Figure::Fig10, arch);
        assert_eq!(p.red(), 0.0, "{arch:?} {p}");
        assert!((p.orange() - p_flood()).abs() < TOL, "{arch:?} {p}");
        assert!((p.green() - (1.0 - p_flood())).abs() < TOL, "{arch:?} {p}");
    }
    // "6+6+6" becomes entirely green.
    let p = profile(Figure::Fig10, C6P6P6);
    assert!((p.green() - 1.0).abs() < TOL, "{p}");
}

#[test]
fn fig11_kahe_backup_under_intrusion() {
    // "2": unchanged from Fig. 7 (single site).
    let p2 = profile(Figure::Fig11, C2);
    assert!(p2.approx_eq(&profile(Figure::Fig7, C2), TOL), "{p2}");
    // "2-2": with Kahe there is *always* a functional server to
    // compromise: fully gray.
    let p22 = profile(Figure::Fig11, C2_2);
    assert!((p22.gray() - 1.0).abs() < TOL, "{p22}");
    // "6-6" uses the Kahe backup to convert red to orange.
    let p66 = profile(Figure::Fig11, C6_6);
    assert_eq!(p66.red(), 0.0, "{p66}");
    assert!((p66.orange() - p_flood()).abs() < TOL, "{p66}");
    // "6+6+6" maintains continuous availability: 100 % green.
    let p666 = profile(Figure::Fig11, C6P6P6);
    assert!((p666.green() - 1.0).abs() < TOL, "{p666}");
}

#[test]
fn headline_probability_close_to_paper() {
    // Paper: 90.5 % green / 9.5 % red. Ours is calibrated, not
    // copied; require agreement within 2.5 points.
    let base = profile(Figure::Fig6, C2);
    assert!(
        (base.green() - 0.905).abs() < 0.025,
        "green {} too far from the paper's 0.905",
        base.green()
    );
}

#[test]
fn scenario_severity_is_monotone_per_architecture() {
    // Adding attack capability never increases the green probability.
    for arch in [C2, C2_2, C6, C6_6, C6P6P6] {
        let hurricane = profile(Figure::Fig6, arch).green();
        let intrusion = profile(Figure::Fig7, arch).green();
        let isolation = profile(Figure::Fig8, arch).green();
        let both = profile(Figure::Fig9, arch).green();
        assert!(intrusion <= hurricane + TOL, "{arch:?}");
        assert!(isolation <= hurricane + TOL, "{arch:?}");
        assert!(both <= intrusion + TOL, "{arch:?}");
        assert!(both <= isolation + TOL, "{arch:?}");
    }
}
