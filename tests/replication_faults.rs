//! Fault-injection integration tests for the executable SCADA
//! architectures: recovery after healed attacks, hot takeover, view
//! changes under repeated leader loss, and attack timings the
//! verdict-level tests do not cover.

use ct_replication::{
    build_deployment, run_scenario, DeploymentSpec, FaultScenario, ObservedState, ProtocolMsg,
    Role, VerdictConfig,
};
use ct_simnet::{FaultAction, FaultPlan, NodeId, Sim, SimTime, SiteId};

fn cfg() -> VerdictConfig {
    VerdictConfig {
        run_duration: SimTime::from_secs(60.0),
        ..VerdictConfig::default()
    }
}

/// Builds and runs a deployment manually so tests can inject faults
/// the scenario struct does not expose.
fn manual_sim(spec: &DeploymentSpec) -> (Sim<Role>, NodeId) {
    let built = build_deployment(spec);
    let client = built.client;
    let sim = Sim::new(built.net, 7, built.nodes);
    (sim, client)
}

#[test]
fn healed_isolation_resumes_service_in_place() {
    // Isolate the only control center of config "6" for 15 virtual
    // seconds, then heal the partition: the system must resume
    // without any cold backup.
    let (mut sim, client) = manual_sim(&DeploymentSpec::config_6());
    let plan = FaultPlan::new()
        .at(
            SimTime::from_secs(10.0),
            FaultAction::IsolateSite(SiteId(0)),
        )
        .at(SimTime::from_secs(25.0), FaultAction::HealSite(SiteId(0)));
    sim.apply_fault_plan(&plan);
    sim.run_until(SimTime::from_secs(60.0));
    let rtu = sim.node(client).as_rtu().expect("client");
    let times = rtu.accept_times();
    assert!(
        times.iter().any(|&t| t < SimTime::from_secs(10.0)),
        "no service before the attack"
    );
    let during = times
        .iter()
        .filter(|&&t| t > SimTime::from_secs(13.0) && t < SimTime::from_secs(25.0))
        .count();
    assert_eq!(during, 0, "service should stop while isolated");
    assert!(
        times.iter().any(|&t| t > SimTime::from_secs(30.0)),
        "service should resume after healing"
    );
    assert_eq!(rtu.bad_accepts, 0);
}

#[test]
fn primary_master_crash_is_absorbed_by_hot_standby() {
    // Config "2": crash the acting master only. The hot standby must
    // take over within seconds — the one fault this architecture is
    // designed for.
    let (mut sim, client) = manual_sim(&DeploymentSpec::config_2());
    let plan = FaultPlan::new().at(SimTime::from_secs(10.0), FaultAction::CrashNode(NodeId(0)));
    sim.apply_fault_plan(&plan);
    sim.run_until(SimTime::from_secs(40.0));
    let rtu = sim.node(client).as_rtu().expect("client");
    let times = rtu.accept_times();
    assert!(
        times.iter().any(|&t| t > SimTime::from_secs(35.0)),
        "hot standby did not take over"
    );
    // The takeover gap must be small (hot, not cold).
    let mut prev = SimTime::from_secs(5.0);
    let mut max_gap = SimTime::ZERO;
    for &t in times.iter().filter(|&&t| t >= SimTime::from_secs(5.0)) {
        let gap = t.saturating_sub(prev);
        if gap > max_gap {
            max_gap = gap;
        }
        prev = t;
    }
    assert!(
        max_gap < SimTime::from_secs(6.0),
        "hot takeover too slow: {max_gap}"
    );
}

#[test]
fn two_leader_crashes_keep_quorum_replication_live() {
    // Config "6" commits on quorums of 4, so it rides out two crashed
    // leaders: view changes walk past them and commits continue.
    let (mut sim, client) = manual_sim(&DeploymentSpec::config_6());
    let plan = FaultPlan::new()
        .at(SimTime::from_secs(8.0), FaultAction::CrashNode(NodeId(0)))
        .at(SimTime::from_secs(16.0), FaultAction::CrashNode(NodeId(1)));
    sim.apply_fault_plan(&plan);
    sim.run_until(SimTime::from_secs(60.0));
    let rtu = sim.node(client).as_rtu().expect("client");
    assert!(
        rtu.accept_times()
            .iter()
            .any(|&t| t > SimTime::from_secs(55.0)),
        "replication died after two leader crashes"
    );
    assert_eq!(rtu.bad_accepts, 0);
}

#[test]
fn a_third_crash_exceeds_the_quorum_bound_and_stalls() {
    // With 3 of 6 replicas gone only 3 remain — below the commit
    // quorum of 4. The protocol must stall (lose liveness) but never
    // accept bad data: exactly the quorum arithmetic Table I encodes.
    let (mut sim, client) = manual_sim(&DeploymentSpec::config_6());
    let plan = FaultPlan::new()
        .at(SimTime::from_secs(8.0), FaultAction::CrashNode(NodeId(0)))
        .at(SimTime::from_secs(8.0), FaultAction::CrashNode(NodeId(1)))
        .at(SimTime::from_secs(8.0), FaultAction::CrashNode(NodeId(2)));
    sim.apply_fault_plan(&plan);
    sim.run_until(SimTime::from_secs(60.0));
    let rtu = sim.node(client).as_rtu().expect("client");
    let after = rtu
        .accept_times()
        .iter()
        .filter(|&&t| t > SimTime::from_secs(12.0))
        .count();
    assert_eq!(after, 0, "commits below quorum");
    assert_eq!(rtu.bad_accepts, 0, "stalling must not corrupt safety");
}

#[test]
fn six_six_survives_primary_flood_plus_backup_intrusion() {
    // Fig. 9's "minimum survivable configuration" corner: the
    // hurricane floods the primary site AND the attacker has
    // compromised a replica in the backup site that takes over.
    let v = run_scenario(
        &DeploymentSpec::config_6_6(),
        &FaultScenario {
            flooded_sites: vec![0],
            intrusions: vec![(1, 0)],
            ..FaultScenario::default()
        },
        &cfg(),
    );
    assert_eq!(v.state, ObservedState::Orange, "{v:?}");
    assert!(v.safe);
}

#[test]
fn two_two_backup_intrusion_after_failover_is_gray() {
    let v = run_scenario(
        &DeploymentSpec::config_2_2(),
        &FaultScenario {
            flooded_sites: vec![0],
            intrusions: vec![(1, 0)],
            ..FaultScenario::default()
        },
        &cfg(),
    );
    assert_eq!(v.state, ObservedState::Gray, "{v:?}");
    assert!(v.bad_accepts > 0);
}

#[test]
fn isolating_the_backup_site_changes_nothing() {
    // The attacker targeting the *backup* instead of the primary is
    // strictly weaker — the paper's attacker never does it; verify
    // the system stays green.
    for spec in [DeploymentSpec::config_2_2(), DeploymentSpec::config_6_6()] {
        let v = run_scenario(
            &spec,
            &FaultScenario {
                isolated_sites: vec![1],
                ..FaultScenario::default()
            },
            &cfg(),
        );
        assert_eq!(v.state, ObservedState::Green, "{}: {v:?}", spec.name);
    }
}

#[test]
fn deterministic_verdicts() {
    let scenario = FaultScenario {
        flooded_sites: vec![0],
        intrusions: vec![(1, 0)],
        ..FaultScenario::default()
    };
    let a = run_scenario(&DeploymentSpec::config_6_6(), &scenario, &cfg());
    let b = run_scenario(&DeploymentSpec::config_6_6(), &scenario, &cfg());
    assert_eq!(a, b);
}

#[test]
fn client_sees_progress_through_proactive_recovery_of_the_leader() {
    // The recovery rotation takes the view-0 leader offline around
    // t=10s for 3s; a view change should bridge it without an
    // orange-scale gap.
    let v = run_scenario(
        &DeploymentSpec::config_6(),
        &FaultScenario::benign(),
        &cfg(),
    );
    assert_eq!(v.state, ObservedState::Green, "{v:?}");
    assert!(v.max_gap < SimTime::from_secs(8.0), "{v:?}");
}

/// The protocol message type is part of the public API; make sure the
/// enum stays exhaustively matchable for downstream users.
#[test]
fn protocol_messages_are_cloneable_and_comparable() {
    let m = ProtocolMsg::Propose {
        view: 1,
        seq: 2,
        req: 3,
        digest: 4,
    };
    assert_eq!(m, m.clone());
}
