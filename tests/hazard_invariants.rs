//! Integration tests for the hazard ensemble's correlation structure —
//! the geographic facts every figure in the paper rests on.

use compound_threats::{CaseStudy, CaseStudyConfig};
use ct_scada::oahu;
use std::sync::OnceLock;

fn study() -> &'static CaseStudy {
    static STUDY: OnceLock<CaseStudy> = OnceLock::new();
    STUDY.get_or_init(|| CaseStudy::build(&CaseStudyConfig::default()).expect("case study builds"))
}

#[test]
fn honolulu_flood_probability_near_the_papers() {
    // The paper's ADCIRC ensemble floods the Honolulu control center
    // in 9.5 % of realizations; our calibrated ensemble must land in
    // the same regime.
    let p = study().flood_probability(oahu::HONOLULU_CC).unwrap();
    assert!(
        (0.07..=0.12).contains(&p),
        "Honolulu flood probability {p} strayed from the paper's 0.095"
    );
}

#[test]
fn honolulu_and_waiau_flood_in_exactly_the_same_realizations() {
    // Sec. VI-A: "in every hurricane realization in which the primary
    // control center location is flooded, the backup location is
    // flooded as well" — and Fig. 8's red probability shows the
    // converse also holds in the data.
    let set = study().realizations();
    let h = set.poi_index(oahu::HONOLULU_CC).unwrap();
    let w = set.poi_index(oahu::WAIAU).unwrap();
    assert_eq!(
        set.exclusive_flood_fraction(h, w),
        0.0,
        "H flooded without W"
    );
    assert_eq!(
        set.exclusive_flood_fraction(w, h),
        0.0,
        "W flooded without H"
    );
    assert!(set.flood_fraction(w) > 0.0, "Waiau must flood sometimes");
}

#[test]
fn kahe_is_never_impacted() {
    // Sec. VII: "Kahe is the site least impacted by the hurricane";
    // Fig. 10 requires it never to flood at all.
    let p = study().flood_probability(oahu::KAHE).unwrap();
    assert_eq!(p, 0.0, "Kahe flooded with probability {p}");
}

#[test]
fn data_centers_never_flood() {
    // Fig. 10/11 show "6+6+6" entirely green with the Kahe backup,
    // which requires DRFortress to survive every realization.
    for id in [oahu::DRFORTRESS, oahu::ALOHANAP] {
        let p = study().flood_probability(id).unwrap();
        assert_eq!(p, 0.0, "{id} flooded with probability {p}");
    }
}

#[test]
fn some_substations_flood_sometimes() {
    // The hazard model must be non-trivial beyond the control sites:
    // low-lying south-shore substations take water in strong
    // realizations.
    let set = study().realizations();
    let flooded_anywhere = (0..set.pois().len())
        .filter(|&i| set.flood_fraction(i) > 0.0)
        .count();
    assert!(
        flooded_anywhere >= 3,
        "only {flooded_anywhere} assets ever flood; hazard model too tame"
    );
}

#[test]
fn mountain_side_assets_never_flood() {
    let set = study().realizations();
    for id in ["sub-wahiawa", "sub-pukele", "sub-waianae"] {
        let i = set.poi_index(id).expect("asset exists");
        assert_eq!(set.flood_fraction(i), 0.0, "{id} should be safe");
    }
}

#[test]
fn ensemble_is_deterministic_across_builds() {
    let a =
        CaseStudy::build(&CaseStudyConfig::builder().realizations(60).build().unwrap()).unwrap();
    let b =
        CaseStudy::build(&CaseStudyConfig::builder().realizations(60).build().unwrap()).unwrap();
    assert_eq!(
        a.realizations().realizations(),
        b.realizations().realizations()
    );
}

#[test]
fn tide_and_surge_diagnostics_in_physical_range() {
    for r in study().realizations().realizations() {
        assert!(r.tide_m >= -0.25 && r.tide_m <= 0.45, "tide {}", r.tide_m);
        assert!(
            r.max_station_surge_m > -1.0 && r.max_station_surge_m < 12.0,
            "implausible max surge {}",
            r.max_station_surge_m
        );
        for &d in &r.inundation_m {
            assert!((0.0..10.0).contains(&d), "implausible inundation {d}");
        }
    }
}
