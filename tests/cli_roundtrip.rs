//! Round-trip contracts for the CLI-facing enums: every value's
//! `Display` (and CLI keyword) parses back to the same value, and
//! rejection messages name the offending input. These are the strings
//! users type and scripts grep, so the contracts are pinned here
//! rather than left to convention. The enums are tiny, so coverage is
//! exhaustive: every variant, every case mix, and a corpus of
//! near-miss junk.

use compound_threats::prelude::{HazardSpec, ProbeQuery, StoreUrl};
use ct_scada::oahu::SiteChoice;
use ct_scada::RegionSpec;
use ct_threat::ThreatScenario;
use proptest::prelude::*;
use std::path::Path;

const SITES: [SiteChoice; 2] = [SiteChoice::Waiau, SiteChoice::Kahe];

/// Junk inputs a user could plausibly type; none may parse, and every
/// rejection must quote the input verbatim.
const JUNK: &[&str] = &[
    "",
    " ",
    "hurricane2",
    "hurricanes",
    "intrusion isolation",
    "compound ",
    " compound",
    "hurricane+intrusion",
    "waiau,kahe",
    "kahe-pp",
    "none",
    "all",
    "6-6",
];

#[test]
fn scenario_keyword_and_display_round_trip() {
    for scenario in ThreatScenario::ALL {
        let from_keyword: ThreatScenario = scenario.keyword().parse().unwrap();
        assert_eq!(from_keyword, scenario);
        let from_display: ThreatScenario = scenario.to_string().parse().unwrap();
        assert_eq!(from_display, scenario, "Display must parse back");
    }
}

#[test]
fn scenario_parsing_is_case_insensitive() {
    for scenario in ThreatScenario::ALL {
        for s in [
            scenario.keyword().to_ascii_uppercase(),
            scenario.to_string().to_ascii_uppercase(),
            capitalize(scenario.keyword()),
        ] {
            assert_eq!(s.parse::<ThreatScenario>().unwrap(), scenario, "{s:?}");
        }
    }
}

#[test]
fn site_choice_keyword_and_display_round_trip() {
    for choice in SITES {
        assert_eq!(choice.to_string(), choice.keyword());
        let parsed: SiteChoice = choice.to_string().parse().unwrap();
        assert_eq!(parsed, choice);
        let upper: SiteChoice = choice.keyword().to_ascii_uppercase().parse().unwrap();
        assert_eq!(upper, choice);
    }
}

#[test]
fn hazard_keyword_and_display_round_trip() {
    for hazard in HazardSpec::ALL {
        assert_eq!(hazard.to_string(), hazard.keyword());
        let from_keyword: HazardSpec = hazard.keyword().parse().unwrap();
        assert_eq!(from_keyword, hazard);
        for s in [
            hazard.keyword().to_ascii_uppercase(),
            capitalize(hazard.keyword()),
        ] {
            assert_eq!(s.parse::<HazardSpec>().unwrap(), hazard, "{s:?}");
        }
    }
    assert_eq!(HazardSpec::default(), HazardSpec::Surge);
}

#[test]
fn junk_is_rejected_with_the_input_quoted() {
    for s in JUNK {
        let e = s.parse::<ThreatScenario>().unwrap_err();
        assert!(
            e.to_string().contains(s),
            "scenario rejection must quote {s:?}, got: {e}"
        );
        let e = s.parse::<SiteChoice>().unwrap_err();
        assert!(
            e.to_string().contains(s),
            "site rejection must quote {s:?}, got: {e}"
        );
        if *s == "compound" {
            continue; // a valid hazard keyword
        }
        let e = s.parse::<HazardSpec>().unwrap_err();
        assert!(
            e.to_string().contains(s),
            "hazard rejection must quote {s:?}, got: {e}"
        );
    }
    // Hazard-specific near-misses.
    for s in ["surge+wind", "windd", "flood", "hurricane"] {
        let e = s.parse::<HazardSpec>().unwrap_err();
        assert!(e.to_string().contains(s), "must quote {s:?}: {e}");
    }
}

#[test]
fn store_url_forms_round_trip() {
    // The three accepted forms, and what each resolves to.
    let local: StoreUrl = "runs/store".parse().unwrap();
    assert_eq!(local.local_root(), Some(Path::new("runs/store")));
    let explicit: StoreUrl = "file:///var/ct/store".parse().unwrap();
    assert_eq!(explicit.local_root(), Some(Path::new("/var/ct/store")));
    let remote: StoreUrl = "http://127.0.0.1:7171".parse().unwrap();
    assert_eq!(remote.local_root(), None);
    assert_eq!(remote.to_string(), "http://127.0.0.1:7171");

    // Display → parse → Display is the identity, so a parsed URL can
    // be re-rendered into a child process's argv unchanged.
    for input in [
        "runs/store",
        "/abs/store",
        "file:///abs/store",
        "http://127.0.0.1:7171",
        "http://[::1]:80/",
        "http://shard-host.internal:9000",
    ] {
        let url: StoreUrl = input.parse().unwrap();
        let reparsed: StoreUrl = url.to_string().parse().unwrap();
        assert_eq!(url, reparsed, "round-trip of {input:?}");
        assert_eq!(url.to_string(), reparsed.to_string());
    }
}

#[test]
fn store_url_rejections_are_loud_and_specific() {
    // A typo'd scheme must never be mistaken for a relative path
    // (silently creating a directory literally named `https:/host`).
    for (input, fragment) in [
        ("https://h:1", "unsupported store url scheme"),
        ("ssh://h:1", "unsupported store url scheme"),
        ("", "empty"),
        ("file://", "names no path"),
        ("http://", "host:port"),
        ("http://hostonly", "missing its port"),
        ("http://:7171", "missing its host"),
        ("http://h:99999", "not a valid port"),
        ("http://h:1/objects/abc", "got a path"),
    ] {
        let err = input.parse::<StoreUrl>().unwrap_err();
        assert!(
            err.contains(fragment),
            "input {input:?}: error {err:?} should mention {fragment:?}"
        );
    }
}

/// Characters a store path plausibly contains.
const PATH_CHARS: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', '_', '-', '.', '/', 's', 't', 'o', 'r', 'e',
];

proptest! {
    /// Any bare path without a scheme separator parses as a local
    /// root and survives a Display → parse → Display cycle.
    #[test]
    fn bare_paths_are_local_stores(
        chars in prop::collection::vec(prop::sample::select(PATH_CHARS.to_vec()), 1..40),
    ) {
        let path: String = chars.into_iter().collect();
        prop_assume!(!path.contains("://"));
        let url: StoreUrl = path.parse().unwrap();
        prop_assert_eq!(url.local_root(), Some(Path::new(&path)));
        let reparsed: StoreUrl = url.to_string().parse().unwrap();
        prop_assert_eq!(url, reparsed);
    }

    /// Every scheme other than `file` and `http` is rejected, with
    /// the scheme named in the error.
    #[test]
    fn unknown_schemes_never_parse(
        chars in prop::collection::vec(
            prop::sample::select("abcdefghijklmnopqrstuvwxyz".chars().collect::<Vec<_>>()),
            2..8,
        ),
    ) {
        let scheme: String = chars.into_iter().collect();
        prop_assume!(scheme != "file" && scheme != "http");
        let input = format!("{scheme}://host:1");
        let err = input.parse::<StoreUrl>().unwrap_err();
        prop_assert!(err.contains(&scheme), "error {err:?} should name {scheme:?}");
    }
}

proptest! {
    /// Every probe query survives a Display → parse cycle unchanged —
    /// the grammar shared by `GET /probe` and `ct probe`, so a query
    /// logged by the server replays verbatim through the CLI.
    #[test]
    fn probe_queries_round_trip(
        scenario in prop::sample::select(ThreatScenario::ALL.to_vec()),
        site in prop::sample::select(SITES.to_vec()),
        hazard in prop::sample::select(HazardSpec::ALL.to_vec()),
        realizations in 1usize..5000,
        region in (any::<bool>(), 0u64..1000, 1usize..8, 4usize..200).prop_map(
            |(oahu, seed, regions, assets)| {
                if oahu {
                    RegionSpec::Oahu
                } else {
                    RegionSpec::Synth { seed, regions, assets: assets.max(regions * 4) }
                }
            },
        ),
    ) {
        let query = ProbeQuery { scenario, site, hazard, realizations, region };
        let reparsed: ProbeQuery = query.to_string().parse().unwrap();
        prop_assert_eq!(query, reparsed);
        prop_assert!(query.target().starts_with("/probe?scenario="));
    }

    /// An unknown parameter key is rejected by name, never silently
    /// ignored — a typo'd key must not probe the defaults.
    #[test]
    fn probe_unknown_keys_are_rejected_by_name(
        chars in prop::collection::vec(
            prop::sample::select("abcdefghijklmnopqrstuvwxyz".chars().collect::<Vec<_>>()),
            1..12,
        ),
    ) {
        let key: String = chars.into_iter().collect();
        prop_assume!(!matches!(
            key.as_str(),
            "scenario" | "site" | "hazard" | "realizations" | "region"
        ));
        let input = format!("scenario=compound&site=waiau&{key}=1");
        let err = input.parse::<ProbeQuery>().unwrap_err();
        prop_assert!(err.contains(&key), "error {:?} should name {:?}", err, key);
    }
}

#[test]
fn probe_query_rejections_quote_the_offender() {
    for (input, fragment) in [
        ("", "scenario"),
        ("scenario=compound", "site"),
        (
            "site=waiau&scenario",
            "malformed probe parameter 'scenario'",
        ),
        ("scenario=florble&site=waiau", "florble"),
        ("scenario=compound&site=nauru", "nauru"),
        ("scenario=compound&site=waiau&hazard=volcano", "volcano"),
        (
            "scenario=compound&site=waiau&realizations=-3",
            "positive integer",
        ),
    ] {
        let err = input.parse::<ProbeQuery>().unwrap_err();
        assert!(
            err.contains(fragment),
            "input {input:?}: error {err:?} should mention {fragment:?}"
        );
    }
}

proptest! {
    /// Any scenario/site pair survives a Display → parse → Display
    /// cycle unchanged (format stability for scripts that pipe `ct`
    /// output back into arguments).
    #[test]
    fn display_parse_display_is_identity(
        scenario in prop::sample::select(ThreatScenario::ALL.to_vec()),
        choice in prop::sample::select(SITES.to_vec()),
        hazard in prop::sample::select(HazardSpec::ALL.to_vec()),
    ) {
        let s1 = scenario.to_string();
        let s2 = s1.parse::<ThreatScenario>().unwrap().to_string();
        prop_assert_eq!(s1, s2);
        let c1 = choice.to_string();
        let c2 = c1.parse::<SiteChoice>().unwrap().to_string();
        prop_assert_eq!(c1, c2);
        let h1 = hazard.to_string();
        let h2 = h1.parse::<HazardSpec>().unwrap().to_string();
        prop_assert_eq!(h1, h2);
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_ascii_uppercase().to_string() + chars.as_str(),
        None => String::new(),
    }
}
