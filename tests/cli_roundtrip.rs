//! Round-trip contracts for the CLI-facing enums: every value's
//! `Display` (and CLI keyword) parses back to the same value, and
//! rejection messages name the offending input. These are the strings
//! users type and scripts grep, so the contracts are pinned here
//! rather than left to convention. The enums are tiny, so coverage is
//! exhaustive: every variant, every case mix, and a corpus of
//! near-miss junk.

use compound_threats::prelude::HazardSpec;
use ct_scada::oahu::SiteChoice;
use ct_threat::ThreatScenario;
use proptest::prelude::*;

const SITES: [SiteChoice; 2] = [SiteChoice::Waiau, SiteChoice::Kahe];

/// Junk inputs a user could plausibly type; none may parse, and every
/// rejection must quote the input verbatim.
const JUNK: &[&str] = &[
    "",
    " ",
    "hurricane2",
    "hurricanes",
    "intrusion isolation",
    "compound ",
    " compound",
    "hurricane+intrusion",
    "waiau,kahe",
    "kahe-pp",
    "none",
    "all",
    "6-6",
];

#[test]
fn scenario_keyword_and_display_round_trip() {
    for scenario in ThreatScenario::ALL {
        let from_keyword: ThreatScenario = scenario.keyword().parse().unwrap();
        assert_eq!(from_keyword, scenario);
        let from_display: ThreatScenario = scenario.to_string().parse().unwrap();
        assert_eq!(from_display, scenario, "Display must parse back");
    }
}

#[test]
fn scenario_parsing_is_case_insensitive() {
    for scenario in ThreatScenario::ALL {
        for s in [
            scenario.keyword().to_ascii_uppercase(),
            scenario.to_string().to_ascii_uppercase(),
            capitalize(scenario.keyword()),
        ] {
            assert_eq!(s.parse::<ThreatScenario>().unwrap(), scenario, "{s:?}");
        }
    }
}

#[test]
fn site_choice_keyword_and_display_round_trip() {
    for choice in SITES {
        assert_eq!(choice.to_string(), choice.keyword());
        let parsed: SiteChoice = choice.to_string().parse().unwrap();
        assert_eq!(parsed, choice);
        let upper: SiteChoice = choice.keyword().to_ascii_uppercase().parse().unwrap();
        assert_eq!(upper, choice);
    }
}

#[test]
fn hazard_keyword_and_display_round_trip() {
    for hazard in HazardSpec::ALL {
        assert_eq!(hazard.to_string(), hazard.keyword());
        let from_keyword: HazardSpec = hazard.keyword().parse().unwrap();
        assert_eq!(from_keyword, hazard);
        for s in [
            hazard.keyword().to_ascii_uppercase(),
            capitalize(hazard.keyword()),
        ] {
            assert_eq!(s.parse::<HazardSpec>().unwrap(), hazard, "{s:?}");
        }
    }
    assert_eq!(HazardSpec::default(), HazardSpec::Surge);
}

#[test]
fn junk_is_rejected_with_the_input_quoted() {
    for s in JUNK {
        let e = s.parse::<ThreatScenario>().unwrap_err();
        assert!(
            e.to_string().contains(s),
            "scenario rejection must quote {s:?}, got: {e}"
        );
        let e = s.parse::<SiteChoice>().unwrap_err();
        assert!(
            e.to_string().contains(s),
            "site rejection must quote {s:?}, got: {e}"
        );
        if *s == "compound" {
            continue; // a valid hazard keyword
        }
        let e = s.parse::<HazardSpec>().unwrap_err();
        assert!(
            e.to_string().contains(s),
            "hazard rejection must quote {s:?}, got: {e}"
        );
    }
    // Hazard-specific near-misses.
    for s in ["surge+wind", "windd", "flood", "hurricane"] {
        let e = s.parse::<HazardSpec>().unwrap_err();
        assert!(e.to_string().contains(s), "must quote {s:?}: {e}");
    }
}

proptest! {
    /// Any scenario/site pair survives a Display → parse → Display
    /// cycle unchanged (format stability for scripts that pipe `ct`
    /// output back into arguments).
    #[test]
    fn display_parse_display_is_identity(
        scenario in prop::sample::select(ThreatScenario::ALL.to_vec()),
        choice in prop::sample::select(SITES.to_vec()),
        hazard in prop::sample::select(HazardSpec::ALL.to_vec()),
    ) {
        let s1 = scenario.to_string();
        let s2 = s1.parse::<ThreatScenario>().unwrap().to_string();
        prop_assert_eq!(s1, s2);
        let c1 = choice.to_string();
        let c2 = c1.parse::<SiteChoice>().unwrap().to_string();
        prop_assert_eq!(c1, c2);
        let h1 = hazard.to_string();
        let h2 = h1.parse::<HazardSpec>().unwrap().to_string();
        prop_assert_eq!(h1, h2);
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_ascii_uppercase().to_string() + chars.as_str(),
        None => String::new(),
    }
}
