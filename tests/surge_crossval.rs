//! Cross-validation of the fast parametric surge model against the
//! 2-D shallow-water solver (the ADCIRC stand-in) on a set of
//! characteristic storms.
//!
//! Absolute levels are not expected to match — the parametric model is
//! calibrated as an *effective* flood level including wave effects —
//! but both models must agree on the spatial pattern (which coasts
//! take the surge) and on storm-strength ordering.

use ct_geo::terrain::{synthesize_oahu, OahuTerrainConfig};
use ct_geo::{Dem, LatLon};
use ct_hydro::{
    ParametricSurge, ShallowWaterConfig, ShallowWaterSolver, StationId, Stations, StormParams,
    StormTrack, SurgeCalibration,
};
use std::sync::OnceLock;

fn dem() -> &'static Dem {
    static DEM: OnceLock<Dem> = OnceLock::new();
    DEM.get_or_init(|| synthesize_oahu(&OahuTerrainConfig::default()))
}

/// Coarse, fast solver configuration for CI-friendly runtimes.
fn coarse() -> ShallowWaterConfig {
    ShallowWaterConfig {
        cell_km: 3.0,
        window_before_hours: 8.0,
        window_after_hours: 4.0,
        ..ShallowWaterConfig::default()
    }
}

fn storm(passing_lon: f64, deficit_hpa: f64) -> StormParams {
    StormParams {
        track: StormTrack::straight(LatLon::new(19.2, passing_lon), 5.0, 6.0, 48.0)
            .expect("valid track"),
        central_pressure_hpa: 1010.0 - deficit_hpa,
        ambient_pressure_hpa: 1010.0,
        rmax_km: 35.0,
        b: 1.6,
        tide_m: 0.2,
    }
}

fn solver_peak(outcome: &ct_hydro::swe::SurgeOutcome, station: StationId) -> f64 {
    let stations = Stations::from_dem(dem());
    let pos = stations.get(station).pos;
    let enu = dem().projection().to_enu(pos);
    outcome.coastal_peak_near(enu, 8.0).unwrap_or(0.0)
}

#[test]
fn both_models_put_the_surge_on_the_southern_shelf() {
    let solver = ShallowWaterSolver::new(dem(), coarse());
    let s = storm(-158.35, 44.0); // direct hit passing just west
    let outcome = solver.run(&s).expect("solver stays stable");

    let parametric = ParametricSurge::new(Stations::from_dem(dem()), SurgeCalibration::default());
    let fast = parametric.station_surge(&s).unwrap();

    // Shallow-shelf stations (South/Ewa) must dominate the suppressed
    // windward/north coasts in BOTH models.
    let solver_shelf =
        solver_peak(&outcome, StationId::South).max(solver_peak(&outcome, StationId::Ewa));
    let solver_far = solver_peak(&outcome, StationId::East);
    assert!(
        solver_shelf > solver_far,
        "solver: shelf {solver_shelf} vs windward {solver_far}"
    );

    let fast_shelf = fast.get(StationId::South).max(fast.get(StationId::Ewa));
    let fast_far = fast.get(StationId::East);
    assert!(
        fast_shelf > fast_far,
        "parametric: {fast_shelf} vs {fast_far}"
    );
}

#[test]
fn both_models_agree_a_distant_storm_is_harmless() {
    let solver = ShallowWaterSolver::new(dem(), coarse());
    let s = storm(-160.5, 44.0); // passes ~260 km west
    let outcome = solver.run(&s).expect("solver stays stable");
    let peak = [
        StationId::South,
        StationId::Ewa,
        StationId::West,
        StationId::North,
        StationId::East,
    ]
    .iter()
    .map(|&id| solver_peak(&outcome, id))
    .fold(0.0f64, f64::max);
    assert!(peak < 1.0, "solver distant-storm surge {peak}");

    let parametric = ParametricSurge::new(Stations::from_dem(dem()), SurgeCalibration::default());
    let fast = parametric.station_surge(&s).unwrap();
    assert!(
        fast.max_surge_m() < 1.0,
        "parametric {}",
        fast.max_surge_m()
    );
}

#[test]
fn both_models_scale_with_storm_intensity() {
    let solver = ShallowWaterSolver::new(dem(), coarse());
    let weak = solver.run(&storm(-158.35, 25.0)).unwrap();
    let strong = solver.run(&storm(-158.35, 60.0)).unwrap();
    let weak_peak = solver_peak(&weak, StationId::Ewa);
    let strong_peak = solver_peak(&strong, StationId::Ewa);
    assert!(
        strong_peak > weak_peak,
        "solver: strong {strong_peak} <= weak {weak_peak}"
    );

    let parametric = ParametricSurge::new(Stations::from_dem(dem()), SurgeCalibration::default());
    let pw = parametric.station_surge(&storm(-158.35, 25.0)).unwrap();
    let ps = parametric.station_surge(&storm(-158.35, 60.0)).unwrap();
    assert!(ps.get(StationId::Ewa) > pw.get(StationId::Ewa));
}

#[test]
fn solver_stays_stable_across_track_sweep() {
    let solver = ShallowWaterSolver::new(dem(), coarse());
    for lon in [-158.9, -158.5, -158.2, -157.9, -157.5] {
        let outcome = solver.run(&storm(lon, 44.0)).expect("stable");
        assert!(
            outcome.max_speed_ms < 15.0,
            "speed clamp reached for track at {lon}: likely instability"
        );
    }
}
