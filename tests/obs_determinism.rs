//! The observability layer's determinism contract: work counters and
//! the span tree are functions of the workload, not of how many
//! worker threads executed it. Timings (`wall_ns`, `cpu_ns`) are
//! explicitly excluded — only structure and counts are compared.
//!
//! Kept as a single global-registry `#[test]` because it snapshots
//! and resets the process-global registry; concurrent tests would
//! race it. The golden-format test below uses a local [`Registry`]
//! and is safe to run alongside.

use compound_threats::figures::{reproduce, Figure};
use compound_threats::{CaseStudy, CaseStudyConfig};

/// The thread-count-independent projection of a snapshot: counters,
/// histogram bucket counts, and `(span path, calls)` pairs.
type Projection = (Vec<(String, u64)>, Vec<String>, Vec<(String, u64)>);

/// Runs a reduced pipeline with `threads` workers and projects the
/// global snapshot.
fn run_with(threads: usize) -> Projection {
    ct_obs::reset();
    let config = CaseStudyConfig::builder()
        .realizations(60)
        .threads(threads)
        .build()
        .unwrap();
    let study = CaseStudy::build(&config).unwrap();
    reproduce(&study, Figure::Fig6).unwrap();
    reproduce(&study, Figure::Fig9).unwrap();
    let snap = ct_obs::snapshot();
    let hist_lines: Vec<String> = snap
        .histograms
        .iter()
        .flat_map(|h| {
            h.buckets
                .iter()
                .enumerate()
                .map(|(i, n)| format!("{}[{i}]={n}", h.name))
                .chain([format!("{}[count]={}", h.name, h.count)])
                .collect::<Vec<_>>()
        })
        .collect();
    let span_calls = snap
        .spans
        .iter()
        .map(|s| (s.path.clone(), s.calls))
        .collect();
    (snap.counters.clone(), hist_lines, span_calls)
}

#[test]
fn counters_and_span_tree_are_thread_count_invariant() {
    let baseline = run_with(1);
    for threads in [4, 8] {
        let other = run_with(threads);
        assert_eq!(
            baseline.0, other.0,
            "counters diverge between 1 and {threads} threads"
        );
        assert_eq!(
            baseline.1, other.1,
            "histogram buckets diverge between 1 and {threads} threads"
        );
        assert_eq!(
            baseline.2, other.2,
            "span tree diverges between 1 and {threads} threads"
        );
    }

    // The workload actually registered work: realizations were
    // evaluated, profiles computed, attacker candidates examined.
    let count = |name: &str| {
        baseline
            .0
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(count(ct_obs::names::HYDRO_REALIZATIONS_EVALUATED), 60);
    assert_eq!(count(ct_obs::names::HAZARD_REALIZATIONS_EVALUATED), 60);
    let exposures = count(ct_obs::names::HAZARD_ASSET_EXPOSURES);
    assert!(
        exposures > 0 && exposures % 60 == 0,
        "asset exposures must be realizations × POIs, got {exposures}"
    );
    // The default hazard is plain surge — no compound components.
    assert_eq!(
        count(ct_obs::names::HAZARD_COMPOUND_COMPONENT_EVALUATIONS),
        0
    );
    assert_eq!(count(ct_obs::names::FIGURES_REPRODUCED), 2);
    assert!(count(ct_obs::names::PROFILE_PLANS_EVALUATED) > 0);
    assert!(count(ct_obs::names::ATTACKER_CANDIDATES_EXAMINED) > 0);
    assert!(baseline
        .2
        .iter()
        .any(|(path, calls)| path == "build/hazard_evaluate" && *calls == 1));
}

#[test]
fn snapshot_csv_matches_golden_format() {
    // A hand-built local registry whose CSV rendering is pinned
    // verbatim: any schema drift (column order, field names, bucket
    // labels) must show up as a diff here, not in downstream parsers.
    let reg = ct_obs::Registry::new();
    reg.counter("hydro.realizations_evaluated").add(60);
    reg.counter("swe.steps").add(12_000);
    reg.gauge("build.threads").set(4.0);
    let h = reg.histogram("swe.steps_per_solve", &[250.0, 500.0]);
    h.observe(200.0);
    h.observe(300.0);
    h.observe(900.0);
    let golden = "\
kind,name,field,value
counter,hydro.realizations_evaluated,value,60
counter,swe.steps,value,12000
gauge,build.threads,value,4
hist,swe.steps_per_solve,le_250,1
hist,swe.steps_per_solve,le_500,1
hist,swe.steps_per_solve,le_inf,1
hist,swe.steps_per_solve,count,3
hist,swe.steps_per_solve,sum,1400
";
    assert_eq!(reg.snapshot().to_csv(), golden);
}
