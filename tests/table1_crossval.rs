//! Cross-validation of Table I against protocol executions: for every
//! system state the worst-case attacker can reach in the case study,
//! the rule-based operational state must match what the discrete-event
//! replication simulation actually observes.

use compound_threats::crossval::{cross_validate, reachable_states};
use ct_replication::VerdictConfig;
use ct_scada::Architecture;
use ct_simnet::SimTime;

fn config() -> VerdictConfig {
    VerdictConfig {
        run_duration: SimTime::from_secs(60.0),
        ..VerdictConfig::default()
    }
}

fn assert_architecture_agrees(arch: Architecture) {
    let cfg = config();
    for state in reachable_states(arch) {
        let cv = cross_validate(&state, &cfg);
        assert!(
            cv.agrees(),
            "{state}: Table I says {}, execution observed {} ({:?})",
            cv.rule,
            cv.observed,
            cv.verdict
        );
    }
}

#[test]
fn config_2_matches_execution() {
    assert_architecture_agrees(Architecture::C2);
}

#[test]
fn config_2_2_matches_execution() {
    assert_architecture_agrees(Architecture::C2_2);
}

#[test]
fn config_6_matches_execution() {
    assert_architecture_agrees(Architecture::C6);
}

#[test]
fn config_6_6_matches_execution() {
    assert_architecture_agrees(Architecture::C6_6);
}

#[test]
fn config_6p6p6_matches_execution() {
    assert_architecture_agrees(Architecture::C6P6P6);
}
