//! End-to-end contracts of the artifact store: warm and cold builds
//! are bit-identical, sharded runs merge to the clean answer, an
//! interrupted run resumes from whatever records survived, and every
//! class of on-disk corruption degrades to recompute — counted, never
//! trusted, never fatal.

use compound_threats::artifact::{ensemble_base_key, realization_key};
use compound_threats::figures::reproduce_all;
use compound_threats::prelude::*;
use compound_threats::report::figure_csv;
use ct_geo::terrain::synthesize_oahu;
use std::sync::Arc;

const REALIZATIONS: usize = 24;

fn config() -> CaseStudyConfig {
    CaseStudyConfig::builder()
        .realizations(REALIZATIONS)
        .build()
        .unwrap()
}

/// Unique scratch directory for one test, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "ct-store-resume-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&root).ok();
        Self(root)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// All figure output as one CSV string — the user-visible artifact
/// whose bit-identity the store must preserve.
fn figures_csv(study: &CaseStudy) -> String {
    reproduce_all(study)
        .unwrap()
        .iter()
        .map(figure_csv)
        .collect()
}

#[test]
fn warm_and_cold_builds_are_bit_identical() {
    let scratch = Scratch::new("warmcold");
    let config = config();
    let plain = CaseStudy::build(&config).unwrap();

    let store = Store::open(&scratch.0).unwrap();
    let cold = CaseStudy::build_with_store(&config, Some(&store)).unwrap();
    let warm = CaseStudy::build_with_store(&config, Some(&store)).unwrap();

    // The ensembles are equal f64-for-f64 (RealizationSet's PartialEq
    // compares every field), and the rendered figures are equal
    // byte-for-byte.
    assert_eq!(plain.realizations(), cold.realizations());
    assert_eq!(plain.realizations(), warm.realizations());
    let golden = figures_csv(&plain);
    assert_eq!(golden, figures_csv(&cold));
    assert_eq!(golden, figures_csv(&warm));
}

#[test]
fn interrupted_shard_resumes_and_merges_to_the_clean_answer() {
    let scratch = Scratch::new("resume");
    let config = config();
    let store = Store::open(&scratch.0).unwrap();

    // A full shard-0 run, then simulate a `kill -9` that happened
    // mid-run by deleting a third of its records: what's left on disk
    // is exactly what an interrupted process would have committed
    // (writes are atomic, so partial *files* cannot exist — only
    // missing records).
    let spec = ShardSpec::new(0, 2).unwrap();
    let first = run_shard(&config, &store, spec).unwrap();
    assert_eq!(first.computed, first.total);
    let dem = synthesize_oahu(&config.terrain);
    let pois = ct_scada::oahu::case_study_pois(&dem).unwrap();
    let hazard = config.hazard.build_model(&dem, config.calibration);
    let base = ensemble_base_key(&config, &dem, &pois, hazard.as_ref());
    for i in (0..REALIZATIONS).filter(|i| spec.owns(*i)).take(4) {
        assert!(store.evict(&realization_key(&base, i)).unwrap());
    }

    // Resuming the shard recomputes exactly the lost records.
    let resumed = run_shard(&config, &store, spec).unwrap();
    assert_eq!(resumed.computed, 4);
    assert_eq!(resumed.reused, resumed.total - 4);

    // Merge with shard 1 never run: it fills the other half itself
    // and still matches a clean single-process build exactly.
    let merged = CaseStudy::merge_from_store(&config, &store).unwrap();
    let clean = CaseStudy::build(&config).unwrap();
    assert_eq!(merged.realizations(), clean.realizations());
    assert_eq!(figures_csv(&merged), figures_csv(&clean));
}

#[test]
fn every_corruption_class_degrades_to_recompute_and_heals() {
    let scratch = Scratch::new("corrupt");
    let config = config();

    // Seed the store, then damage three records, one per corruption
    // class the frame format distinguishes.
    let seed_store = Store::open(&scratch.0).unwrap();
    let clean = CaseStudy::build_with_store(&config, Some(&seed_store)).unwrap();
    let dem = synthesize_oahu(&config.terrain);
    let pois = ct_scada::oahu::case_study_pois(&dem).unwrap();
    let hazard = config.hazard.build_model(&dem, config.calibration);
    let base = ensemble_base_key(&config, &dem, &pois, hazard.as_ref());

    let damage = |i: usize, f: &dyn Fn(Vec<u8>) -> Vec<u8>| {
        let path = seed_store.record_path(&realization_key(&base, i));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, f(bytes)).unwrap();
    };
    // Truncated mid-payload (a torn write from a crashed kernel).
    damage(0, &|b| b[..b.len() / 2].to_vec());
    // Flipped payload byte (bit rot): frame intact, checksum fails.
    damage(1, &|mut b| {
        b[30] ^= 0xff;
        b
    });
    // Wrong format version (record from a future incompatible build).
    damage(2, &|mut b| {
        b[8..12].copy_from_slice(&99u32.to_le_bytes());
        b
    });

    // Rebuild through a store with a private registry so the counter
    // assertions are exact (the global registry is shared with other
    // tests in this binary).
    let registry = Arc::new(ct_obs::Registry::new());
    let counting_store = Store::open_with_registry(&scratch.0, Arc::clone(&registry)).unwrap();
    let rebuilt = CaseStudy::build_with_store(&config, Some(&counting_store)).unwrap();
    assert_eq!(
        rebuilt.realizations(),
        clean.realizations(),
        "corruption must never change results"
    );

    let snap = registry.snapshot();
    let count = |name| snap.counter(name).unwrap_or(0);
    assert_eq!(count(ct_obs::names::STORE_CORRUPT_RECORDS), 3);
    assert_eq!(count(ct_obs::names::STORE_EVICTIONS), 3);
    assert_eq!(count(ct_obs::names::STORE_HITS), (REALIZATIONS - 3) as u64);
    assert_eq!(count(ct_obs::names::STORE_RECORDS_WRITTEN), 3);

    // The rebuild healed the store: a third pass is all hits.
    let healed_reg = Arc::new(ct_obs::Registry::new());
    let healed_store = Store::open_with_registry(&scratch.0, Arc::clone(&healed_reg)).unwrap();
    CaseStudy::build_with_store(&config, Some(&healed_store)).unwrap();
    let snap = healed_reg.snapshot();
    assert_eq!(
        snap.counter(ct_obs::names::STORE_HITS).unwrap_or(0),
        REALIZATIONS as u64
    );
    assert_eq!(
        snap.counter(ct_obs::names::STORE_CORRUPT_RECORDS)
            .unwrap_or(0),
        0
    );
}

#[test]
fn different_configs_never_share_records() {
    let scratch = Scratch::new("isolation");
    let store = Store::open(&scratch.0).unwrap();
    let a = config();
    CaseStudy::build_with_store(&a, Some(&store)).unwrap();

    // Same size, different seed: a full recompute, not a single hit —
    // checked by confirming the store grew by a full second ensemble.
    let mut b = a.clone();
    b.ensemble.seed += 1;
    let before = count_records(&scratch.0);
    CaseStudy::build_with_store(&b, Some(&store)).unwrap();
    assert_eq!(count_records(&scratch.0), before + REALIZATIONS);
}

fn count_records(root: &std::path::Path) -> usize {
    let mut n = 0;
    let objects = root.join("objects");
    for shard in std::fs::read_dir(objects).into_iter().flatten().flatten() {
        n += std::fs::read_dir(shard.path())
            .into_iter()
            .flatten()
            .count();
    }
    n
}
