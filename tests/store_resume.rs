//! End-to-end contracts of the artifact store: warm and cold builds
//! are bit-identical, sharded runs merge to the clean answer, an
//! interrupted run resumes from whatever records survived, and every
//! class of on-disk corruption degrades to recompute — counted, never
//! trusted, never fatal. The failpoint layer (`ct_store::faults`)
//! extends that contract to *live* I/O failure: ENOSPC, failed
//! renames, failed evictions, and transient errors are injected
//! deterministically, and the figures must come out bit-identical
//! anyway.

use compound_threats::artifact::{ensemble_base_key, realization_key};
use compound_threats::figures::reproduce_all;
use compound_threats::prelude::*;
use compound_threats::report::figure_csv;
use ct_geo::terrain::synthesize_oahu;
use ct_store::faults::sites;
use ct_store::{FaultKind, FaultRegistry, FaultSpec, FsckOptions, PackedOptions};
use std::sync::Arc;
use std::time::Duration;

const REALIZATIONS: usize = 24;

fn config() -> CaseStudyConfig {
    CaseStudyConfig::builder()
        .realizations(REALIZATIONS)
        .build()
        .unwrap()
}

/// Unique scratch directory for one test, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "ct-store-resume-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&root).ok();
        Self(root)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// All figure output as one CSV string — the user-visible artifact
/// whose bit-identity the store must preserve.
fn figures_csv(study: &CaseStudy) -> String {
    reproduce_all(study)
        .unwrap()
        .iter()
        .map(figure_csv)
        .collect()
}

#[test]
fn warm_and_cold_builds_are_bit_identical() {
    let scratch = Scratch::new("warmcold");
    let config = config();
    let plain = CaseStudy::build(&config).unwrap();

    let store = Store::open(&scratch.0).unwrap();
    let cold = CaseStudy::build_with_store(&config, Some(&store)).unwrap();
    let warm = CaseStudy::build_with_store(&config, Some(&store)).unwrap();

    // The ensembles are equal f64-for-f64 (RealizationSet's PartialEq
    // compares every field), and the rendered figures are equal
    // byte-for-byte.
    assert_eq!(plain.realizations(), cold.realizations());
    assert_eq!(plain.realizations(), warm.realizations());
    let golden = figures_csv(&plain);
    assert_eq!(golden, figures_csv(&cold));
    assert_eq!(golden, figures_csv(&warm));
}

#[test]
fn interrupted_shard_resumes_and_merges_to_the_clean_answer() {
    let scratch = Scratch::new("resume");
    let config = config();
    let store = Store::open(&scratch.0).unwrap();

    // A full shard-0 run, then simulate a `kill -9` that happened
    // mid-run by deleting a third of its records: what's left on disk
    // is exactly what an interrupted process would have committed
    // (writes are atomic, so partial *files* cannot exist — only
    // missing records).
    let spec = ShardSpec::new(0, 2).unwrap();
    let first = run_shard(&config, &store, spec).unwrap();
    assert_eq!(first.computed, first.total);
    let dem = synthesize_oahu(&config.terrain);
    let pois = ct_scada::oahu::case_study_pois(&dem).unwrap();
    let hazard = config.hazard.build_model(&dem, config.calibration);
    let base = ensemble_base_key(&config, &dem, &pois, hazard.as_ref());
    for i in (0..REALIZATIONS).filter(|i| spec.owns(*i)).take(4) {
        assert!(store.evict(&realization_key(&base, i)).unwrap());
    }

    // Resuming the shard recomputes exactly the lost records.
    let resumed = run_shard(&config, &store, spec).unwrap();
    assert_eq!(resumed.computed, 4);
    assert_eq!(resumed.reused, resumed.total - 4);

    // Merge with shard 1 never run: it fills the other half itself
    // and still matches a clean single-process build exactly.
    let merged = CaseStudy::merge_from_store(&config, &store).unwrap();
    let clean = CaseStudy::build(&config).unwrap();
    assert_eq!(merged.realizations(), clean.realizations());
    assert_eq!(figures_csv(&merged), figures_csv(&clean));
}

#[test]
fn every_corruption_class_degrades_to_recompute_and_heals() {
    let scratch = Scratch::new("corrupt");
    let config = config();

    // Seed the store, then damage three records, one per corruption
    // class the frame format distinguishes.
    let seed_store = Store::open(&scratch.0).unwrap();
    let clean = CaseStudy::build_with_store(&config, Some(&seed_store)).unwrap();
    let dem = synthesize_oahu(&config.terrain);
    let pois = ct_scada::oahu::case_study_pois(&dem).unwrap();
    let hazard = config.hazard.build_model(&dem, config.calibration);
    let base = ensemble_base_key(&config, &dem, &pois, hazard.as_ref());

    let damage = |i: usize, f: &dyn Fn(Vec<u8>) -> Vec<u8>| {
        let path = seed_store.record_path(&realization_key(&base, i));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, f(bytes)).unwrap();
    };
    // Truncated mid-payload (a torn write from a crashed kernel).
    damage(0, &|b| b[..b.len() / 2].to_vec());
    // Flipped payload byte (bit rot): frame intact, checksum fails.
    damage(1, &|mut b| {
        b[30] ^= 0xff;
        b
    });
    // Wrong format version (record from a future incompatible build).
    damage(2, &|mut b| {
        b[8..12].copy_from_slice(&99u32.to_le_bytes());
        b
    });

    // Rebuild through a store with a private registry so the counter
    // assertions are exact (the global registry is shared with other
    // tests in this binary).
    let registry = Arc::new(ct_obs::Registry::new());
    let counting_store = Store::open_with_registry(&scratch.0, Arc::clone(&registry)).unwrap();
    let rebuilt = CaseStudy::build_with_store(&config, Some(&counting_store)).unwrap();
    assert_eq!(
        rebuilt.realizations(),
        clean.realizations(),
        "corruption must never change results"
    );

    let snap = registry.snapshot();
    let count = |name| snap.counter(name).unwrap_or(0);
    assert_eq!(count(ct_obs::names::STORE_CORRUPT_RECORDS), 3);
    assert_eq!(count(ct_obs::names::STORE_EVICTIONS), 3);
    assert_eq!(count(ct_obs::names::STORE_HITS), (REALIZATIONS - 3) as u64);
    assert_eq!(count(ct_obs::names::STORE_RECORDS_WRITTEN), 3);

    // The rebuild healed the store: a third pass is all hits.
    let healed_reg = Arc::new(ct_obs::Registry::new());
    let healed_store = Store::open_with_registry(&scratch.0, Arc::clone(&healed_reg)).unwrap();
    CaseStudy::build_with_store(&config, Some(&healed_store)).unwrap();
    let snap = healed_reg.snapshot();
    assert_eq!(
        snap.counter(ct_obs::names::STORE_HITS).unwrap_or(0),
        REALIZATIONS as u64
    );
    assert_eq!(
        snap.counter(ct_obs::names::STORE_CORRUPT_RECORDS)
            .unwrap_or(0),
        0
    );
}

#[test]
fn different_configs_never_share_records() {
    let scratch = Scratch::new("isolation");
    let store = Store::open(&scratch.0).unwrap();
    let a = config();
    CaseStudy::build_with_store(&a, Some(&store)).unwrap();

    // Same size, different seed: a full recompute, not a single hit —
    // checked by confirming the store grew by a full second ensemble.
    let mut b = a.clone();
    b.ensemble.seed += 1;
    let before = count_records(&scratch.0);
    CaseStudy::build_with_store(&b, Some(&store)).unwrap();
    assert_eq!(count_records(&scratch.0), before + REALIZATIONS);
}

/// A store with private metrics and fault registries, so fault tests
/// get exact counter assertions under the parallel test runner.
fn faulty_store(root: &std::path::Path) -> (Store, Arc<ct_obs::Registry>, Arc<FaultRegistry>) {
    let registry = Arc::new(ct_obs::Registry::new());
    let faults = Arc::new(FaultRegistry::with_obs(Arc::clone(&registry)));
    let store = Store::open_with_faults(root, Arc::clone(&registry), Arc::clone(&faults)).unwrap();
    (store, registry, faults)
}

#[test]
fn enospc_during_every_put_degrades_but_results_are_bit_identical() {
    let scratch = Scratch::new("enospc");
    let config = config();
    let clean = CaseStudy::build(&config).unwrap();

    let (store, registry, faults) = faulty_store(&scratch.0);
    faults.arm(FaultSpec::every(
        sites::STORE_PUT_WRITE,
        1,
        FaultKind::Enospc,
    ));
    let faulty = CaseStudy::build_with_store(&config, Some(&store)).unwrap();

    // Snapshot before rendering figures: figure reproduction performs
    // its own histogram puts, which would keep firing the failpoint.
    let snap = registry.snapshot();
    let count = |name| snap.counter(name).unwrap_or(0);
    assert_eq!(count(ct_obs::names::FAULTS_ARMED), 1);
    assert_eq!(count(ct_obs::names::FAULTS_FIRED), REALIZATIONS as u64);
    assert_eq!(count(ct_obs::names::STORE_DEGRADED), REALIZATIONS as u64);
    assert_eq!(count(ct_obs::names::STORE_RECORDS_WRITTEN), 0);
    // ENOSPC is not transient: the retry loop must not have burned
    // time on a full disk.
    assert_eq!(count(ct_obs::names::STORE_RETRIES), 0);

    assert_eq!(faulty.realizations(), clean.realizations());
    assert_eq!(figures_csv(&faulty), figures_csv(&clean));
}

#[test]
fn rename_failure_degrades_and_leaves_no_tmp_residue() {
    let scratch = Scratch::new("rename");
    let config = config();
    let clean = CaseStudy::build(&config).unwrap();

    let (store, registry, faults) = faulty_store(&scratch.0);
    faults.arm(FaultSpec::every(
        sites::STORE_PUT_RENAME,
        1,
        FaultKind::Enospc,
    ));
    let faulty = CaseStudy::build_with_store(&config, Some(&store)).unwrap();

    let snap = registry.snapshot();
    let count = |name| snap.counter(name).unwrap_or(0);
    assert_eq!(count(ct_obs::names::STORE_DEGRADED), REALIZATIONS as u64);
    assert_eq!(count(ct_obs::names::STORE_RECORDS_WRITTEN), 0);
    // Every failed put cleaned up after itself: the staging area holds
    // nothing even though every single rename failed.
    assert_eq!(
        std::fs::read_dir(scratch.0.join("tmp")).unwrap().count(),
        0,
        "failed puts must not orphan tmp files"
    );
    assert_eq!(faulty.realizations(), clean.realizations());
}

#[test]
fn transient_write_fault_is_absorbed_by_retry_not_degradation() {
    let scratch = Scratch::new("transient");
    let config = config();
    let clean = CaseStudy::build(&config).unwrap();

    let (store, registry, faults) = faulty_store(&scratch.0);
    // Fires exactly once, on the first write attempt anywhere: the
    // retry loop must absorb it invisibly.
    faults.arm(FaultSpec::once(sites::STORE_PUT_WRITE, 1, FaultKind::Io));
    let faulty = CaseStudy::build_with_store(&config, Some(&store)).unwrap();

    let snap = registry.snapshot();
    let count = |name| snap.counter(name).unwrap_or(0);
    assert_eq!(count(ct_obs::names::FAULTS_FIRED), 1);
    assert_eq!(count(ct_obs::names::STORE_RETRIES), 1);
    assert_eq!(count(ct_obs::names::STORE_DEGRADED), 0);
    assert_eq!(
        count(ct_obs::names::STORE_RECORDS_WRITTEN),
        REALIZATIONS as u64,
        "the retried put must succeed"
    );
    assert_eq!(faulty.realizations(), clean.realizations());
}

#[test]
fn evict_failure_during_corrupt_get_degrades_to_recompute() {
    let scratch = Scratch::new("evictfault");
    let config = config();

    // Seed cleanly, then corrupt one record on disk.
    let seed_store = Store::open(&scratch.0).unwrap();
    let clean = CaseStudy::build_with_store(&config, Some(&seed_store)).unwrap();
    let dem = synthesize_oahu(&config.terrain);
    let pois = ct_scada::oahu::case_study_pois(&dem).unwrap();
    let hazard = config.hazard.build_model(&dem, config.calibration);
    let base = ensemble_base_key(&config, &dem, &pois, hazard.as_ref());
    let victim = seed_store.record_path(&realization_key(&base, 0));
    let mut bytes = std::fs::read(&victim).unwrap();
    *bytes.last_mut().unwrap() ^= 0xff;
    std::fs::write(&victim, bytes).unwrap();

    // Rebuild with the eviction path failing persistently: the corrupt
    // record is detected, its eviction fails past the retry budget,
    // and the whole get degrades to a fresh evaluation.
    let (store, registry, faults) = faulty_store(&scratch.0);
    faults.arm(FaultSpec::every(
        sites::STORE_EVICT_REMOVE,
        1,
        FaultKind::Io,
    ));
    let rebuilt = CaseStudy::build_with_store(&config, Some(&store)).unwrap();

    let snap = registry.snapshot();
    let count = |name| snap.counter(name).unwrap_or(0);
    assert_eq!(count(ct_obs::names::STORE_CORRUPT_RECORDS), 1);
    assert_eq!(count(ct_obs::names::STORE_EVICTIONS), 0);
    assert_eq!(count(ct_obs::names::STORE_DEGRADED), 1);
    // Default budget: 2 retried attempts, all three firing.
    assert_eq!(count(ct_obs::names::STORE_RETRIES), 2);
    assert_eq!(count(ct_obs::names::FAULTS_FIRED), 3);
    assert_eq!(count(ct_obs::names::STORE_HITS), (REALIZATIONS - 1) as u64);
    assert_eq!(rebuilt.realizations(), clean.realizations());
}

#[test]
fn fsck_reports_then_heals_a_damaged_store_exactly() {
    let scratch = Scratch::new("fsck");
    let config = config();

    let registry = Arc::new(ct_obs::Registry::new());
    let store = Store::open_with_registry(&scratch.0, Arc::clone(&registry)).unwrap();
    let clean = CaseStudy::build_with_store(&config, Some(&store)).unwrap();
    let clean_csv = figures_csv(&clean);

    // Injected damage: three corrupt records (one per corruption class
    // the frame distinguishes) and two orphaned staging files.
    let dem = synthesize_oahu(&config.terrain);
    let pois = ct_scada::oahu::case_study_pois(&dem).unwrap();
    let hazard = config.hazard.build_model(&dem, config.calibration);
    let base = ensemble_base_key(&config, &dem, &pois, hazard.as_ref());
    let damage = |i: usize, f: &dyn Fn(Vec<u8>) -> Vec<u8>| {
        let path = store.record_path(&realization_key(&base, i));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, f(bytes)).unwrap();
    };
    damage(0, &|b| b[..b.len() / 2].to_vec());
    damage(1, &|mut b| {
        b[30] ^= 0xff;
        b
    });
    damage(2, &|mut b| {
        b[8..12].copy_from_slice(&99u32.to_le_bytes());
        b
    });
    for n in 0..2 {
        std::fs::write(
            scratch.0.join("tmp").join(format!("orphan.{n}.0.0.tmp")),
            b"crashed writer residue",
        )
        .unwrap();
    }

    let records_total = count_records(&scratch.0);

    // Read-only pass: exact findings, zero modification.
    let report = store.fsck(&FsckOptions::default()).unwrap();
    assert_eq!(report.records_scanned, records_total);
    assert_eq!(report.corrupt_records, 3);
    assert_eq!(report.repaired, 0);
    assert_eq!(report.tmp_files, 2);
    assert_eq!(report.tmp_swept, 0);
    assert!(!report.clean());
    assert_eq!(count_records(&scratch.0), records_total);

    // Repair pass heals every injected problem, exactly.
    let report = store
        .fsck(&FsckOptions {
            repair: true,
            tmp_max_age: Duration::ZERO,
            prune_max_age: None,
        })
        .unwrap();
    assert_eq!(report.corrupt_records, 3);
    assert_eq!(report.repaired, 3);
    assert_eq!(report.tmp_swept, 2);
    let snap = registry.snapshot();
    assert_eq!(snap.counter(ct_obs::names::STORE_TMP_SWEPT), Some(2));

    // A re-check is clean, and a rebuild recomputes only the three
    // evicted records while reproducing the figures byte-for-byte.
    let report = store.fsck(&FsckOptions::default()).unwrap();
    assert!(
        report.clean(),
        "repair must leave a clean store: {report:?}"
    );
    let rebuilt_reg = Arc::new(ct_obs::Registry::new());
    let rebuilt_store = Store::open_with_registry(&scratch.0, Arc::clone(&rebuilt_reg)).unwrap();
    let rebuilt = CaseStudy::build_with_store(&config, Some(&rebuilt_store)).unwrap();
    let snap = rebuilt_reg.snapshot();
    assert_eq!(
        snap.counter(ct_obs::names::STORE_HITS),
        Some((REALIZATIONS - 3) as u64)
    );
    assert_eq!(figures_csv(&rebuilt), clean_csv);
}

#[test]
fn full_fault_campaign_still_merges_to_bit_identical_figures() {
    let scratch = Scratch::new("campaign");
    let config = config();
    let clean = CaseStudy::build(&config).unwrap();
    let clean_csv = figures_csv(&clean);

    // Every store failpoint armed at once, firing every Nth hit with
    // coprime-ish periods so the failure pattern keeps shifting across
    // sites. Transient faults exercise the retry loop; the rest
    // exercise degradation. The hydro and packed-segment sites are
    // armed too (they simply never fire here — the case-study pipeline
    // uses the parametric hazard, not the SWE cache, and this store
    // uses the loose layout — but arming them proves an armed plan
    // over every site is harmless).
    let (store, registry, faults) = faulty_store(&scratch.0);
    let armed = faults
        .arm_plan(
            "store.put.write:3:io, store.put.rename:5:io, store.put.sync_dir:7:enospc, \
             store.get.read:3:io, store.evict.remove:2:io, \
             hydro.cache.get:2:io, hydro.cache.put:2:io, \
             segment.append:3:io, segment.sync:2:enospc, segment.footer:2:io, \
             segment.compact:1:io",
        )
        .unwrap();
    assert_eq!(armed, 11, "every registered failpoint site arms");

    // A full sharded run under fire: both shards, then the merge.
    for index in 0..2 {
        let shard = ShardSpec::new(index, 2).unwrap();
        run_shard(&config, &store, shard).unwrap();
    }
    let merged = CaseStudy::merge_from_store(&config, &store).unwrap();
    let merged_csv = figures_csv(&merged);

    let snap = registry.snapshot();
    let count = |name| snap.counter(name).unwrap_or(0);
    assert!(
        count(ct_obs::names::FAULTS_FIRED) > 0,
        "the campaign must actually have injected faults"
    );
    assert_eq!(merged.realizations(), clean.realizations());
    assert_eq!(merged_csv, clean_csv);

    // Whatever the campaign left behind, repair returns the store to
    // health.
    faults.disarm_all();
    let report = store
        .fsck(&FsckOptions {
            repair: true,
            tmp_max_age: Duration::ZERO,
            prune_max_age: None,
        })
        .unwrap();
    assert_eq!(report.repaired, report.corrupt_records);
    assert!(store.fsck(&FsckOptions::default()).unwrap().clean());
}

/// Tiny thresholds so a 24-realization run spans several segments and
/// group syncs, exercising roll/seal/footer paths end to end.
const TINY_SEGMENTS: PackedOptions = PackedOptions {
    roll_bytes: 2048,
    sync_bytes: 512,
};

/// A packed store with private metrics and fault registries.
fn packed_faulty_store(
    root: &std::path::Path,
    options: PackedOptions,
) -> (Store, Arc<ct_obs::Registry>, Arc<FaultRegistry>) {
    let registry = Arc::new(ct_obs::Registry::new());
    let faults = Arc::new(FaultRegistry::with_obs(Arc::clone(&registry)));
    let store =
        Store::open_packed_with_options(root, Arc::clone(&registry), Arc::clone(&faults), options)
            .unwrap();
    (store, registry, faults)
}

#[test]
fn packed_store_is_bit_identical_to_loose_with_the_same_keys() {
    let scratch = Scratch::new("packedloose");
    let config = config();
    let loose_root = scratch.0.join("loose");
    let packed_root = scratch.0.join("packed");

    let loose = Store::open(&loose_root).unwrap();
    let packed = Store::open_packed(&packed_root).unwrap();
    assert!(!loose.is_packed());
    assert!(packed.is_packed());

    // The same run through both layouts: identical ensembles and
    // byte-identical figures.
    let via_loose = CaseStudy::build_with_store(&config, Some(&loose)).unwrap();
    let via_packed = CaseStudy::build_with_store(&config, Some(&packed)).unwrap();
    assert_eq!(via_loose.realizations(), via_packed.realizations());
    assert_eq!(figures_csv(&via_loose), figures_csv(&via_packed));

    // Identical keys: every realization record is stored under the
    // same digest in both layouts, with byte-identical payloads.
    let dem = synthesize_oahu(&config.terrain);
    let pois = ct_scada::oahu::case_study_pois(&dem).unwrap();
    let hazard = config.hazard.build_model(&dem, config.calibration);
    let base = ensemble_base_key(&config, &dem, &pois, hazard.as_ref());
    for i in 0..REALIZATIONS {
        let key = realization_key(&base, i);
        let l = loose.get(&key).unwrap().expect("loose record present");
        let p = packed.get(&key).unwrap().expect("packed record present");
        assert_eq!(l, p, "payloads must match across layouts");
    }

    // Reopening the packed root without `--packed` auto-detects the
    // layout, and a warm rebuild is all hits.
    drop(packed);
    let registry = Arc::new(ct_obs::Registry::new());
    let reopened = Store::open_with_registry(&packed_root, Arc::clone(&registry)).unwrap();
    assert!(reopened.is_packed());
    CaseStudy::build_with_store(&config, Some(&reopened)).unwrap();
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter(ct_obs::names::STORE_HITS),
        Some(REALIZATIONS as u64)
    );
    assert_eq!(
        snap.counter(ct_obs::names::STORE_RECORDS_WRITTEN)
            .unwrap_or(0),
        0
    );
}

#[test]
fn packed_damage_campaign_recovers_at_open_and_fsck_heals_exactly() {
    let scratch = Scratch::new("packeddamage");
    let config = config();

    let (store, registry, _faults) = packed_faulty_store(&scratch.0, TINY_SEGMENTS);
    let clean = CaseStudy::build_with_store(&config, Some(&store)).unwrap();
    let clean_csv = figures_csv(&clean);
    let snap = registry.snapshot();
    let count = |name| snap.counter(name).unwrap_or(0);
    assert!(count(ct_obs::names::STORE_SEGMENT_APPENDS) >= REALIZATIONS as u64);
    assert!(count(ct_obs::names::STORE_SEGMENT_SEALS) >= 2);
    assert!(
        count(ct_obs::names::STORE_SEGMENT_GROUP_SYNCS)
            >= count(ct_obs::names::STORE_SEGMENT_SEALS)
    );
    drop(store); // final group sync

    let seg_dir = scratch.0.join("segments");
    let mut segments: Vec<std::path::PathBuf> = std::fs::read_dir(&seg_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segments.sort();
    assert!(
        segments.len() >= 3,
        "tiny thresholds must produce several segments, got {}",
        segments.len()
    );
    let sealed = segments.len() - 1;

    // Damage one segment per recovery class:
    // 1. a torn append past the active segment's last clean entry
    //    (crash mid-write) — dropped by the open-time scan;
    let garbage = b"torn!";
    let mut tail = std::fs::read(segments.last().unwrap()).unwrap();
    tail.extend_from_slice(garbage);
    std::fs::write(segments.last().unwrap(), tail).unwrap();
    // 2. a flipped checksum byte in the first sealed segment's first
    //    entry (bit rot) — served from the index, caught on read;
    let first = std::fs::read(&segments[0]).unwrap();
    let entry = ct_store::segment::parse_entry(&first).expect("segment starts with an entry");
    let victim_len = entry.len as usize;
    let mut flipped = first;
    flipped[victim_len - 1] ^= 0xff;
    std::fs::write(&segments[0], flipped).unwrap();
    // 3. a damaged footer trailer on the second sealed segment — its
    //    index rebuilds by scanning frames instead.
    let mut footerless = std::fs::read(&segments[1]).unwrap();
    let n = footerless.len();
    footerless[n - 5] ^= 0xff;
    std::fs::write(&segments[1], footerless).unwrap();

    // Reopen: sealed-minus-one footer loads, two scans (damaged footer
    // + active), two truncated tails (torn append + chopped footer).
    let registry = Arc::new(ct_obs::Registry::new());
    let store = Store::open_with_registry(&scratch.0, Arc::clone(&registry)).unwrap();
    assert!(store.is_packed());
    let snap = registry.snapshot();
    let count = |name| snap.counter(name).unwrap_or(0);
    assert_eq!(
        count(ct_obs::names::STORE_SEGMENT_FOOTER_LOADS),
        (sealed - 1) as u64
    );
    assert_eq!(count(ct_obs::names::STORE_SEGMENT_SCANS), 2);
    assert_eq!(count(ct_obs::names::STORE_SEGMENT_TRUNCATED_TAILS), 2);

    // Read-only fsck finds exactly the flipped record (the torn tail
    // and footer were already dropped or rebuilt at open).
    let report = store.fsck(&FsckOptions::default()).unwrap();
    assert_eq!(report.segments_scanned, segments.len());
    assert_eq!(report.corrupt_records, 1);
    assert_eq!(report.repaired, 0);
    assert_eq!(report.segments_compacted, 0);
    assert!(!report.clean());

    // Repair tombstones the corrupt record and compacts exactly the
    // dirty segment.
    let report = store
        .fsck(&FsckOptions {
            repair: true,
            tmp_max_age: Duration::ZERO,
            prune_max_age: None,
        })
        .unwrap();
    assert_eq!(report.corrupt_records, 1);
    assert_eq!(report.repaired, 1);
    assert_eq!(report.segments_compacted, 1);
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter(ct_obs::names::STORE_SEGMENT_COMPACTIONS),
        Some(1)
    );
    assert!(store.fsck(&FsckOptions::default()).unwrap().clean());

    // A rebuild recomputes only what the damage cost and reproduces
    // the figures byte-for-byte.
    let rebuilt = CaseStudy::build_with_store(&config, Some(&store)).unwrap();
    assert_eq!(figures_csv(&rebuilt), clean_csv);
    assert!(store.fsck(&FsckOptions::default()).unwrap().clean());
}

#[test]
fn packed_fault_campaign_merges_bit_identical_and_repairs() {
    let scratch = Scratch::new("packedfire");
    let config = config();
    let clean = CaseStudy::build(&config).unwrap();
    let clean_csv = figures_csv(&clean);

    // Every packed-layout failpoint plus the shared read site, armed
    // at once with shifting periods, over a sharded run that rolls and
    // group-syncs constantly thanks to the tiny thresholds.
    let (store, registry, faults) = packed_faulty_store(&scratch.0, TINY_SEGMENTS);
    let armed = faults
        .arm_plan(
            "segment.append:3:io, segment.sync:2:enospc, segment.footer:2:io, store.get.read:4:io",
        )
        .unwrap();
    assert_eq!(armed, 4);

    for index in 0..2 {
        let shard = ShardSpec::new(index, 2).unwrap();
        run_shard(&config, &store, shard).unwrap();
    }
    let merged = CaseStudy::merge_from_store(&config, &store).unwrap();
    let merged_csv = figures_csv(&merged);

    let snap = registry.snapshot();
    let count = |name| snap.counter(name).unwrap_or(0);
    assert!(
        count(ct_obs::names::FAULTS_FIRED) > 0,
        "the campaign must actually have injected faults"
    );
    assert_eq!(merged.realizations(), clean.realizations());
    assert_eq!(merged_csv, clean_csv);
    faults.disarm_all();

    // Crash-during-compaction: flip a record's checksum byte, then
    // fail the repair's compaction once. The tombstone written before
    // the crash makes the heal durable: the retried repair finds
    // nothing left to fix, and the store is clean.
    let seg_dir = scratch.0.join("segments");
    let mut segments: Vec<std::path::PathBuf> = std::fs::read_dir(&seg_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segments.sort();
    let first = std::fs::read(&segments[0]).unwrap();
    let entry = ct_store::segment::parse_entry(&first).expect("segment starts with an entry");
    let victim_len = entry.len as usize;
    let mut flipped = first;
    flipped[victim_len - 1] ^= 0xff;
    std::fs::write(&segments[0], flipped).unwrap();

    let store = Store::open_with_registry(&scratch.0, Arc::new(ct_obs::Registry::new())).unwrap();
    drop(store);
    let (store, _registry, faults) = {
        let registry = Arc::new(ct_obs::Registry::new());
        let faults = Arc::new(FaultRegistry::with_obs(Arc::clone(&registry)));
        let store = Store::open_with_faults(&scratch.0, Arc::clone(&registry), Arc::clone(&faults))
            .unwrap();
        (store, registry, faults)
    };
    faults.arm(FaultSpec::once(sites::SEGMENT_COMPACT, 1, FaultKind::Io));
    let repair = FsckOptions {
        repair: true,
        tmp_max_age: Duration::ZERO,
        prune_max_age: None,
    };
    assert!(
        store.fsck(&repair).is_err(),
        "the injected compaction crash must surface"
    );
    store.fsck(&repair).unwrap();
    assert!(store.fsck(&FsckOptions::default()).unwrap().clean());

    // The record the damage cost is recomputed; figures still match.
    let remerged = CaseStudy::merge_from_store(&config, &store).unwrap();
    assert_eq!(figures_csv(&remerged), clean_csv);
}

fn count_records(root: &std::path::Path) -> usize {
    let mut n = 0;
    let objects = root.join("objects");
    for shard in std::fs::read_dir(objects).into_iter().flatten().flatten() {
        n += std::fs::read_dir(shard.path())
            .into_iter()
            .flatten()
            .count();
    }
    n
}
